// Package wal implements the crash-safe durability layer of the
// measurement-campaign engine: an append-only, checksummed write-ahead
// log of per-run records plus periodic checkpoint records carrying the
// incremental analyzer state. A campaign that journals every completed
// batch can be killed at any instant — power loss, OOM kill, ctrl-C —
// and resumed to produce bit-identical results to an uninterrupted
// campaign, which is what MBPTA's statistical protocol demands: the
// analyzed sample must be exactly the sample that would have been
// collected without the interruption.
//
// # File format
//
// A journal is a fixed header followed by length-prefixed records:
//
//	header  := magic[8]="MBPTAWAL" | version u32
//	record  := kind u8 | len u32 | payload[len] | crc u32
//
// All integers are little-endian. The CRC is IEEE CRC-32 over kind,
// len and payload, so a torn tail (partial write at the crash point)
// or a flipped bit is detected record-by-record. Record kinds:
//
//	meta (1)       — campaign identity (platform, workload, base seed,
//	                 run budget, batch size); always the first record.
//	run (2)        — one completed measurement run: index, derived
//	                 seed, cycles, instructions, fault outcome.
//	checkpoint (3) — a batch barrier: batch index, runs journaled so
//	                 far, and an opaque serialized analyzer state.
//
// # Write discipline
//
// Records are buffered and flushed with one fsync per batch barrier
// (fsync-on-batch): run records of the batch, then the checkpoint,
// then Sync. A crash therefore leaves either a fully valid prefix
// ending in a checkpoint, a valid prefix plus some complete run
// records (a cancellation flush), or a torn tail — Recover handles
// all three, truncating to the last valid checkpoint when it finds
// corruption rather than failing.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Format constants.
const (
	magic   = "MBPTAWAL"
	version = uint32(1)

	kindMeta       = byte(1)
	kindRun        = byte(2)
	kindCheckpoint = byte(3)

	headerSize = 12 // magic + version
	frameSize  = 9  // kind + len + crc
	// maxPayload bounds a single record (the analyzer state of a
	// paper-scale campaign is well under a megabyte; anything larger
	// than this is corruption, not data).
	maxPayload = 1 << 26
)

// Meta identifies the campaign a journal belongs to. Resume validates
// it against the caller's configuration: replaying a journal against a
// different platform, workload or seed would silently break the
// bit-identity guarantee, so a mismatch is an error.
type Meta struct {
	Platform  string `json:"platform"`
	Workload  string `json:"workload"`
	BaseSeed  uint64 `json:"base_seed"`
	MaxRuns   int    `json:"max_runs"`
	BatchSize int    `json:"batch_size"`
}

// ErrJournalMismatch reports that a journal's identity record
// disagrees with the caller's campaign configuration — resuming would
// silently break the bit-identity guarantee. Errors returned by
// Meta.Validate match it via errors.Is; the concrete *MismatchError
// names the first differing field and both values.
var ErrJournalMismatch = errors.New("wal: journal belongs to a different campaign")

// MismatchError is the concrete journal/configuration disagreement:
// which Meta field differs, what the journal recorded and what the
// caller configured. It matches ErrJournalMismatch under errors.Is.
type MismatchError struct {
	Field   string // Meta field name, e.g. "BaseSeed"
	Journal any    // the journaled value
	Caller  any    // the caller's configured value
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("%v: %s: journal has %v, caller configured %v",
		ErrJournalMismatch, e.Field, e.Journal, e.Caller)
}

// Is makes errors.Is(err, ErrJournalMismatch) true for MismatchError.
func (e *MismatchError) Is(target error) bool { return target == ErrJournalMismatch }

// Validate reports whether m (the journaled identity) describes the
// same campaign as other (the caller's configuration). A disagreement
// returns a *MismatchError naming the first differing field.
func (m Meta) Validate(other Meta) error {
	switch {
	case m.Platform != other.Platform:
		return &MismatchError{Field: "Platform", Journal: m.Platform, Caller: other.Platform}
	case m.Workload != other.Workload:
		return &MismatchError{Field: "Workload", Journal: m.Workload, Caller: other.Workload}
	case m.BaseSeed != other.BaseSeed:
		return &MismatchError{Field: "BaseSeed", Journal: m.BaseSeed, Caller: other.BaseSeed}
	case m.MaxRuns != other.MaxRuns:
		return &MismatchError{Field: "MaxRuns", Journal: m.MaxRuns, Caller: other.MaxRuns}
	case m.BatchSize != other.BatchSize:
		return &MismatchError{Field: "BatchSize", Journal: m.BatchSize, Caller: other.BatchSize}
	}
	return nil
}

// RunRecord is one completed measurement run as journaled.
type RunRecord struct {
	Run          int
	Seed         uint64
	Cycles       uint64
	Instructions uint64
	Faults       int
	Path         string
	Outcome      string
}

// Checkpoint is one batch-barrier record: how many runs precede it and
// the serialized incremental-analyzer state at that barrier (empty for
// campaigns journaled without an online analyzer).
type Checkpoint struct {
	Batch int
	Runs  int
	State []byte
}

// encodeFrame appends a complete record frame (kind, length, payload,
// CRC) to dst.
func encodeFrame(dst []byte, kind byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// encodeMeta serializes a meta payload.
func encodeMeta(m Meta) ([]byte, error) { return json.Marshal(m) }

func decodeMeta(payload []byte) (Meta, error) {
	var m Meta
	if err := json.Unmarshal(payload, &m); err != nil {
		return Meta{}, fmt.Errorf("wal: bad meta payload: %w", err)
	}
	return m, nil
}

// encodeRun serializes a run payload:
//
//	run u32 | seed u64 | cycles u64 | instructions u64 | faults u32 |
//	pathLen u16 | path | outcomeLen u16 | outcome
func encodeRun(dst []byte, r RunRecord) ([]byte, error) {
	if r.Run < 0 || r.Faults < 0 {
		return nil, fmt.Errorf("wal: negative run fields (run %d, faults %d)", r.Run, r.Faults)
	}
	if len(r.Path) > 0xFFFF || len(r.Outcome) > 0xFFFF {
		return nil, fmt.Errorf("wal: run %d path/outcome too long", r.Run)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Run))
	dst = binary.LittleEndian.AppendUint64(dst, r.Seed)
	dst = binary.LittleEndian.AppendUint64(dst, r.Cycles)
	dst = binary.LittleEndian.AppendUint64(dst, r.Instructions)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Faults))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Path)))
	dst = append(dst, r.Path...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Outcome)))
	dst = append(dst, r.Outcome...)
	return dst, nil
}

func decodeRun(payload []byte) (RunRecord, error) {
	const fixed = 4 + 8 + 8 + 8 + 4 + 2
	var r RunRecord
	if len(payload) < fixed {
		return r, fmt.Errorf("wal: run payload too short (%d bytes)", len(payload))
	}
	r.Run = int(binary.LittleEndian.Uint32(payload))
	r.Seed = binary.LittleEndian.Uint64(payload[4:])
	r.Cycles = binary.LittleEndian.Uint64(payload[12:])
	r.Instructions = binary.LittleEndian.Uint64(payload[20:])
	r.Faults = int(binary.LittleEndian.Uint32(payload[28:]))
	rest := payload[32:]
	n := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < n+2 {
		return r, fmt.Errorf("wal: run payload truncated inside path")
	}
	r.Path = string(rest[:n])
	rest = rest[n:]
	n = int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) != n {
		return r, fmt.Errorf("wal: run payload length mismatch (outcome wants %d, has %d)", n, len(rest))
	}
	r.Outcome = string(rest)
	return r, nil
}

// encodeCheckpoint serializes a checkpoint payload:
//
//	batch u32 | runs u32 | state...
func encodeCheckpoint(dst []byte, c Checkpoint) ([]byte, error) {
	if c.Batch < 0 || c.Runs < 0 {
		return nil, fmt.Errorf("wal: negative checkpoint fields (batch %d, runs %d)", c.Batch, c.Runs)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Batch))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Runs))
	return append(dst, c.State...), nil
}

func decodeCheckpoint(payload []byte) (Checkpoint, error) {
	var c Checkpoint
	if len(payload) < 8 {
		return c, fmt.Errorf("wal: checkpoint payload too short (%d bytes)", len(payload))
	}
	c.Batch = int(binary.LittleEndian.Uint32(payload))
	c.Runs = int(binary.LittleEndian.Uint32(payload[4:]))
	if len(payload) > 8 {
		c.State = append([]byte(nil), payload[8:]...)
	}
	return c, nil
}
