package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire reuse: the journal's record framing doubles as the wire format
// of the distributed campaign fabric. A remote executor streams each
// completed run back to the coordinator as exactly the frame the
// journal would store — kind, length, payload, IEEE CRC-32 — so the
// two layers share one codec, one fuzz corpus and one corruption
// detector, and a run record is bit-identical whether it crossed a
// socket or an fsync. The fabric adds its own control kinds (lease
// grant, lease done, spec, ...) in the 0x10+ range; the journal kinds
// stay below it, so a stray journal can never be mistaken for a
// control message.

// KindRun is the exported record kind of one completed measurement
// run; shared by the journal file format and the fabric wire protocol.
const KindRun = kindRun

// AppendFrame appends a complete record frame (kind, length, payload,
// CRC) to dst and returns the extended slice — the journal's exact
// on-disk framing, exported for wire use.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	return encodeFrame(dst, kind, payload)
}

// WriteFrame frames payload under kind and writes it to w.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("wal: frame payload %d bytes exceeds the %d limit", len(payload), maxPayload)
	}
	_, err := w.Write(encodeFrame(nil, kind, payload))
	return err
}

// FrameReader decodes a stream of record frames, validating each CRC.
// It is the wire-side counterpart of the journal recovery scan: a
// corrupt frame is an error, not a truncation point, because a socket
// (unlike a crashed file) has no legitimate torn tail.
type FrameReader struct {
	r       *bufio.Reader
	scratch []byte
}

// NewFrameReader wraps r for frame-at-a-time decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Next reads one frame and returns its kind and payload. The payload
// slice is reused across calls; copy it to retain. io.EOF is returned
// only at a clean frame boundary; a connection dropped mid-frame is
// io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (byte, []byte, error) {
	var hdr [5]byte // kind + len
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF here is a clean boundary
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("wal: frame payload %d bytes exceeds the %d limit", n, maxPayload)
	}
	need := n + 4 // payload + crc
	if cap(fr.scratch) < need {
		fr.scratch = make([]byte, need)
	}
	buf := fr.scratch[:need]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(buf[:n])
	if got := binary.LittleEndian.Uint32(buf[n:]); got != crc.Sum32() {
		return 0, nil, fmt.Errorf("wal: frame kind %d CRC mismatch", hdr[0])
	}
	return hdr[0], buf[:n], nil
}

// EncodeRunRecord serializes r with the journal's run-record codec,
// appending to dst. The bytes are exactly a journal run payload.
func EncodeRunRecord(dst []byte, r RunRecord) ([]byte, error) {
	return encodeRun(dst, r)
}

// DecodeRunRecord parses a journal/wire run payload.
func DecodeRunRecord(payload []byte) (RunRecord, error) {
	return decodeRun(payload)
}
