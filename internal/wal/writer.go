package wal

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/telemetry"
)

// Writer appends records to a journal file. Appends are buffered;
// Sync flushes the buffer and fsyncs, the one durability point of the
// write discipline (call it at batch barriers). Writer methods are not
// concurrency-safe: the campaign engine journals only from the single
// batch-barrier goroutine.
type Writer struct {
	f       *os.File
	buf     *bufio.Writer
	scratch []byte
	nextRun int

	records uint64
	fsyncs  uint64
	tele    *telemetry.Registry
}

// Create creates (or truncates) a journal at path and writes the
// header and meta record. The meta record is synced immediately so a
// crash before the first barrier still leaves a well-formed journal.
// reg, when non-nil, receives wal_records_total / wal_fsyncs_total.
func Create(path string, meta Meta, reg *telemetry.Registry) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create journal: %w", err)
	}
	w := &Writer{f: f, buf: bufio.NewWriter(f), tele: reg}
	hdr := append([]byte(magic), 0, 0, 0, 0)
	putUint32(hdr[8:], version)
	if _, err := w.buf.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	payload, err := encodeMeta(meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := w.append(kindMeta, payload); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenAppend recovers the journal at path, truncates it to its valid
// prefix (see Recover) and returns a Writer positioned for appending
// plus the recovered contents. It fails only on unrecoverable
// corruption (bad header or meta record).
func OpenAppend(path string, reg *telemetry.Registry) (*Writer, *Recovered, error) {
	rec, err := Recover(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open journal: %w", err)
	}
	if err := f.Truncate(rec.ValidSize); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncate to valid prefix: %w", err)
	}
	if _, err := f.Seek(rec.ValidSize, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &Writer{f: f, buf: bufio.NewWriter(f), tele: reg, nextRun: len(rec.Runs)}
	return w, rec, nil
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// append frames and buffers one record.
func (w *Writer) append(kind byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("wal: record payload %d bytes exceeds the %d limit", len(payload), maxPayload)
	}
	w.scratch = encodeFrame(w.scratch[:0], kind, payload)
	if _, err := w.buf.Write(w.scratch); err != nil {
		return err
	}
	w.records++
	w.tele.Counter("wal_records_total").Inc()
	return nil
}

// AppendRun journals one completed run. Runs must be appended in run
// order with no gaps — the journal is the campaign's ordered series,
// and the i.i.d. gate is applied to the series as collected.
func (w *Writer) AppendRun(r RunRecord) error {
	if r.Run != w.nextRun {
		return fmt.Errorf("wal: run records out of order: got run %d, want %d", r.Run, w.nextRun)
	}
	payload, err := encodeRun(nil, r)
	if err != nil {
		return err
	}
	if err := w.append(kindRun, payload); err != nil {
		return err
	}
	w.nextRun++
	return nil
}

// AppendCheckpoint journals a batch barrier.
func (w *Writer) AppendCheckpoint(c Checkpoint) error {
	if c.Runs != w.nextRun {
		return fmt.Errorf("wal: checkpoint run count %d disagrees with journaled runs %d", c.Runs, w.nextRun)
	}
	payload, err := encodeCheckpoint(nil, c)
	if err != nil {
		return err
	}
	return w.append(kindCheckpoint, payload)
}

// Sync flushes buffered records and fsyncs the file — the durability
// barrier. Records appended since the previous Sync are not crash-safe
// until it returns.
func (w *Writer) Sync() error {
	if err := w.buf.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs++
	w.tele.Counter("wal_fsyncs_total").Inc()
	return nil
}

// Close syncs and closes the journal.
func (w *Writer) Close() error {
	syncErr := w.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Records returns the number of records appended by this writer.
func (w *Writer) Records() uint64 { return w.records }

// Fsyncs returns the number of Sync barriers this writer has executed.
func (w *Writer) Fsyncs() uint64 { return w.fsyncs }

// Runs returns the number of run records in the journal (recovered
// prefix plus appends).
func (w *Writer) Runs() int { return w.nextRun }
