package wal

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/telemetry"
)

// CampaignJournal adapts a Writer to the campaign engine's
// platform.Journal contract: run records stream in at batch barriers,
// and each Barrier serializes the incremental analyzer state (via the
// state provider) into a checkpoint record and fsyncs. Flush makes
// already-logged runs durable without a checkpoint — the engine calls
// it when a campaign ends mid-batch.
type CampaignJournal struct {
	w     *Writer
	state func() ([]byte, error)
}

// NewCampaignJournal wraps w. state provides the serialized analyzer
// state captured at each barrier (typically core's
// (*OnlineAnalyzer).MarshalState); nil journals runs without
// checkpoint state.
func NewCampaignJournal(w *Writer, state func() ([]byte, error)) *CampaignJournal {
	return &CampaignJournal{w: w, state: state}
}

// LogRun implements platform.Journal.
func (j *CampaignJournal) LogRun(run int, seed uint64, r platform.RunResult) error {
	return j.w.AppendRun(RunRecord{
		Run:          run,
		Seed:         seed,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		Faults:       r.Faults,
		Path:         r.Path,
		Outcome:      r.Outcome,
	})
}

// Barrier implements platform.Journal: checkpoint, then fsync.
func (j *CampaignJournal) Barrier(b platform.Batch) error {
	var state []byte
	if j.state != nil {
		var err error
		if state, err = j.state(); err != nil {
			return fmt.Errorf("wal: serialize checkpoint state: %w", err)
		}
	}
	if err := j.w.AppendCheckpoint(Checkpoint{
		Batch: b.Index,
		Runs:  b.Start + len(b.Results),
		State: state,
	}); err != nil {
		return err
	}
	return j.w.Sync()
}

// Flush implements platform.Journal.
func (j *CampaignJournal) Flush() error { return j.w.Sync() }

// Close syncs and closes the underlying journal file.
func (j *CampaignJournal) Close() error { return j.w.Close() }

// ResumePlan is a recovered journal translated into what a campaign
// needs to continue: the identity metadata to validate, the engine
// resume state, the last checkpoint's serialized analyzer state, and a
// Writer positioned to append.
type ResumePlan struct {
	Meta Meta
	// Resume primes platform.StreamCampaign: the journaled result
	// prefix, the delivered (checkpointed) run count, and the next batch
	// index. Resume.Stopped is left false — the caller decides it after
	// restoring the analyzer.
	Resume platform.ResumeState
	// State is the last checkpoint's analyzer state (nil when the crash
	// predates the first barrier).
	State []byte
	// Writer appends to the recovered journal (already truncated to its
	// valid prefix).
	Writer *Writer
	// Recovered exposes the raw recovery outcome (truncation reports,
	// checkpoint marks) for diagnostics.
	Recovered *Recovered
}

// PrepareResume recovers the journal at path and builds a ResumePlan.
// Torn tails and mid-file corruption are repaired by truncating to the
// last valid checkpoint (see Recover); only a damaged header or meta
// record fails, with a *CorruptError naming the bad offset. Every
// recovered run record is re-validated against the campaign's seed
// derivation, so a journal whose BaseSeed does not reproduce its own
// records is rejected rather than resumed into an inconsistent series.
func PrepareResume(path string, reg *telemetry.Registry) (*ResumePlan, error) {
	w, rec, err := OpenAppend(path, reg)
	if err != nil {
		return nil, err
	}
	for i, r := range rec.Runs {
		if want := platform.DeriveRunSeed(rec.Meta.BaseSeed, i); r.Seed != want {
			w.Close()
			return nil, fmt.Errorf("wal: %s: run %d journaled with seed %#x, base seed %d derives %#x",
				path, i, r.Seed, rec.Meta.BaseSeed, want)
		}
	}
	plan := &ResumePlan{Meta: rec.Meta, Writer: w, Recovered: rec}
	prefix := make([]platform.RunResult, len(rec.Runs))
	for i, r := range rec.Runs {
		prefix[i] = platform.RunResult{
			Cycles:       r.Cycles,
			Instructions: r.Instructions,
			Path:         r.Path,
			Outcome:      r.Outcome,
			Faults:       r.Faults,
		}
	}
	plan.Resume = platform.ResumeState{Prefix: prefix}
	if rec.Checkpoint != nil {
		plan.Resume.StartBatch = rec.Checkpoint.Batch + 1
		plan.Resume.Delivered = rec.Checkpoint.Runs
		plan.State = rec.Checkpoint.State
	}
	return plan, nil
}
