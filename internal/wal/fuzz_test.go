package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRunRecordCodec round-trips the binary run-record codec: any
// encodable record must decode to itself, and any payload must either
// decode cleanly or error — never panic or mis-parse.
func FuzzRunRecordCodec(f *testing.F) {
	f.Add(0, uint64(0), uint64(0), uint64(0), 0, "", "")
	f.Add(1, uint64(42), uint64(123456), uint64(7890), 3, "p1", "masked")
	f.Add(2999, ^uint64(0), uint64(1)<<62, uint64(1)<<40, 4096, "loop-b/then-a", "timing-perturbed")
	f.Add(7, uint64(0x9E3779B97F4A7C15), uint64(1), uint64(1), 1, "path with spaces", "hung")
	f.Fuzz(func(t *testing.T, run int, seed, cycles, instr uint64, faults int, path, outcome string) {
		rr := RunRecord{Run: run, Seed: seed, Cycles: cycles, Instructions: instr,
			Faults: faults, Path: path, Outcome: outcome}
		payload, err := encodeRun(nil, rr)
		if err != nil {
			return // unencodable (negative or oversized fields) is fine
		}
		got, err := decodeRun(payload)
		if err != nil {
			t.Fatalf("decode of freshly encoded record failed: %v", err)
		}
		if got != rr {
			t.Fatalf("round trip %+v != %+v", got, rr)
		}
	})
}

// FuzzDecodePayloads throws arbitrary bytes at every payload decoder:
// they must never panic, and whatever decodes must re-encode.
func FuzzDecodePayloads(f *testing.F) {
	seed, _ := encodeRun(nil, RunRecord{Run: 3, Seed: 9, Cycles: 100, Path: "p", Outcome: "masked"})
	f.Add(seed)
	ck, _ := encodeCheckpoint(nil, Checkpoint{Batch: 2, Runs: 20, State: []byte("{}")})
	f.Add(ck)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if r, err := decodeRun(payload); err == nil {
			re, err := encodeRun(nil, r)
			if err != nil {
				t.Fatalf("decoded record %+v does not re-encode: %v", r, err)
			}
			r2, err := decodeRun(re)
			if err != nil || r2 != r {
				t.Fatalf("re-encode round trip broken: %+v vs %+v (%v)", r, r2, err)
			}
		}
		if c, err := decodeCheckpoint(payload); err == nil {
			re, err := encodeCheckpoint(nil, c)
			if err != nil {
				t.Fatalf("decoded checkpoint %+v does not re-encode: %v", c, err)
			}
			c2, err := decodeCheckpoint(re)
			if err != nil || c2.Batch != c.Batch || c2.Runs != c.Runs || string(c2.State) != string(c.State) {
				t.Fatalf("checkpoint round trip broken: %+v vs %+v (%v)", c, c2, err)
			}
		}
		_, _ = decodeMeta(payload)
	})
}

// FuzzRecover feeds arbitrary file contents to the journal scanner:
// recovery must never panic, never report a ValidSize beyond the file,
// and always return a continuity-validated run prefix.
func FuzzRecover(f *testing.F) {
	// Seed with a well-formed two-batch journal and mutations of it.
	base := buildJournalBytes()
	f.Add(base)
	f.Add(base[:len(base)-3])       // torn tail
	f.Add(base[:headerSize])        // header only
	f.Add([]byte("MBPTAWAL"))       // short header
	f.Add([]byte("not a journal!")) // bad magic
	mut := append([]byte(nil), base...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		rec, err := Recover(path)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("non-CorruptError failure on arbitrary input: %v", err)
			}
			return
		}
		if rec.ValidSize > int64(len(data)) {
			t.Fatalf("ValidSize %d > file size %d", rec.ValidSize, len(data))
		}
		for i, r := range rec.Runs {
			if r.Run != i {
				t.Fatalf("recovered run %d has index %d", i, r.Run)
			}
		}
		if rec.Checkpoint != nil && rec.Checkpoint.Runs > len(rec.Runs) {
			t.Fatalf("checkpoint claims %d runs, only %d recovered", rec.Checkpoint.Runs, len(rec.Runs))
		}
	})
}

// buildJournalBytes assembles a small valid journal in memory (no
// tempdir, usable from fuzz seed registration).
func buildJournalBytes() []byte {
	out := append([]byte(magic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(out[8:], version)
	meta, _ := encodeMeta(Meta{Platform: "RAND", Workload: "w", BaseSeed: 1, MaxRuns: 20, BatchSize: 5})
	out = encodeFrame(out, kindMeta, meta)
	run := 0
	for b := 0; b < 2; b++ {
		for i := 0; i < 5; i++ {
			p, _ := encodeRun(nil, RunRecord{Run: run, Seed: uint64(run), Cycles: uint64(100 + run)})
			out = encodeFrame(out, kindRun, p)
			run++
		}
		c, _ := encodeCheckpoint(nil, Checkpoint{Batch: b, Runs: run, State: []byte(`{"ok":1}`)})
		out = encodeFrame(out, kindCheckpoint, c)
	}
	return out
}

// TestBuildJournalBytesIsValid anchors the fuzz seeds: the in-memory
// builder and the real Writer must agree byte-for-byte.
func TestBuildJournalBytesIsValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.wal")
	if err := os.WriteFile(path, buildJournalBytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Runs) != 10 || rec.Checkpoint == nil || rec.Checkpoint.Batch != 1 || rec.Truncated {
		t.Fatalf("in-memory journal mis-recovered: %d runs, ckpt %+v", len(rec.Runs), rec.Checkpoint)
	}
	// CRC sanity: the frame checksum covers kind+len+payload.
	frame := []byte{kindRun, 1, 0, 0, 0}
	if crc32.ChecksumIEEE(frame) == 0 {
		t.Skip()
	}
}
