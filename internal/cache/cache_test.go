package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// il1Config mirrors the platform's 16KB 4-way 32B-line geometry.
func il1Config(p Placement, r Replacement) Config {
	return Config{
		Name: "IL1", SizeBytes: 16 * 1024, LineBytes: 32, Ways: 4,
		Placement: p, Replacement: r,
	}
}

func newCache(t *testing.T, cfg Config, seed uint64) *Cache {
	t.Helper()
	c, err := New(cfg, rng.NewXoroshiro128(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := il1Config(PlacementModulo, ReplaceLRU)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 128 {
		t.Errorf("sets = %d, want 128", good.Sets())
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "line", SizeBytes: 1024, LineBytes: 31, Ways: 1, Placement: PlacementModulo, Replacement: ReplaceLRU},
		{Name: "indivisible", SizeBytes: 1000, LineBytes: 32, Ways: 4, Placement: PlacementModulo, Replacement: ReplaceLRU},
		{Name: "sets", SizeBytes: 3 * 32 * 4, LineBytes: 32, Ways: 4, Placement: PlacementModulo, Replacement: ReplaceLRU},
		{Name: "placement", SizeBytes: 1024, LineBytes: 32, Ways: 4, Placement: "bogus", Replacement: ReplaceLRU},
		{Name: "replacement", SizeBytes: 1024, LineBytes: 32, Ways: 4, Placement: PlacementModulo, Replacement: "bogus"},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestNewRequiresRNGForRandomPolicies(t *testing.T) {
	if _, err := New(il1Config(PlacementRandomModulo, ReplaceLRU), nil); err == nil {
		t.Error("random placement without rng accepted")
	}
	if _, err := New(il1Config(PlacementModulo, ReplaceRandom), nil); err == nil {
		t.Error("random replacement without rng accepted")
	}
	if _, err := New(il1Config(PlacementModulo, ReplaceLRU), nil); err != nil {
		t.Errorf("deterministic cache rejected: %v", err)
	}
}

func TestHitAfterFill(t *testing.T) {
	for _, p := range []Placement{PlacementModulo, PlacementRandomModulo, PlacementRandomHash} {
		for _, r := range []Replacement{ReplaceLRU, ReplaceRandom, ReplaceRoundRobin} {
			c := newCache(t, il1Config(p, r), 1)
			c.Reseed(42)
			if c.Access(0x8000) {
				t.Errorf("%s/%s: cold access hit", p, r)
			}
			if !c.Access(0x8000) {
				t.Errorf("%s/%s: second access missed", p, r)
			}
			if !c.Access(0x8004) {
				t.Errorf("%s/%s: same-line access missed", p, r)
			}
		}
	}
}

func TestModuloPlacementIsIndexBits(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	for _, addr := range []uint64{0, 32, 64, 0x8000, 0xFFFFE0} {
		want := int((addr >> 5) & 127)
		if got := c.SetOfForTest(addr); got != want {
			t.Errorf("set(%#x) = %d, want %d", addr, got, want)
		}
	}
}

func TestRandomModuloPreservesConsecutiveNonConflict(t *testing.T) {
	// The defining property of random modulo: any window of Sets()
	// consecutive lines within one tag region maps to Sets() distinct
	// sets, so a contiguous footprint <= way size never self-conflicts.
	c := newCache(t, il1Config(PlacementRandomModulo, ReplaceRandom), 3)
	sets := c.Config().Sets()
	lineBytes := uint64(c.Config().LineBytes)
	for _, seed := range []uint64{0, 1, 0xDEADBEEF} {
		c.Reseed(seed)
		// One tag region: 128 lines starting at a tag-aligned base.
		base := uint64(0x40000)
		seen := make(map[int]bool)
		for i := 0; i < sets; i++ {
			s := c.SetOfForTest(base + uint64(i)*lineBytes)
			if seen[s] {
				t.Fatalf("seed %#x: set %d reused within one tag region", seed, s)
			}
			seen[s] = true
		}
	}
}

func TestRandomModuloChangesWithSeed(t *testing.T) {
	c := newCache(t, il1Config(PlacementRandomModulo, ReplaceRandom), 9)
	addr := uint64(0x123460)
	c.Reseed(1)
	s1 := c.SetOfForTest(addr)
	diff := 0
	for seed := uint64(2); seed < 34; seed++ {
		c.Reseed(seed)
		if c.SetOfForTest(addr) != s1 {
			diff++
		}
	}
	if diff < 20 {
		t.Errorf("placement changed for only %d/32 seeds", diff)
	}
}

func TestRandomModuloSetInRangeProperty(t *testing.T) {
	c := newCache(t, il1Config(PlacementRandomModulo, ReplaceRandom), 5)
	f := func(seed, addr uint64) bool {
		c.Reseed(seed)
		s := c.SetOfForTest(addr)
		return s >= 0 && s < c.Config().Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestModuloDeterministicAcrossSeeds(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	addr := uint64(0xABC0)
	c.Reseed(1)
	s1 := c.SetOfForTest(addr)
	c.Reseed(999)
	if c.SetOfForTest(addr) != s1 {
		t.Error("modulo placement changed with seed")
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way set: fill 4 conflicting lines, touch the first, insert a
	// fifth; the second (least recent) must be evicted.
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	setStride := uint64(128 * 32) // lines mapping to the same set
	addrs := make([]uint64, 5)
	for i := range addrs {
		addrs[i] = 0x10000 + uint64(i)*setStride
	}
	for _, a := range addrs[:4] {
		c.Access(a)
	}
	c.Access(addrs[0]) // refresh line 0
	c.Access(addrs[4]) // evicts line 1
	if !c.Probe(addrs[0]) {
		t.Error("recently used line evicted")
	}
	if c.Probe(addrs[1]) {
		t.Error("LRU victim not evicted")
	}
	for _, a := range addrs[2:] {
		if !c.Probe(a) {
			t.Errorf("line %#x missing", a)
		}
	}
}

func TestRoundRobinEviction(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceRoundRobin), 0)
	setStride := uint64(128 * 32)
	base := uint64(0x20000)
	for i := uint64(0); i < 4; i++ {
		c.Access(base + i*setStride)
	}
	// Next two fills evict ways 0 then 1.
	c.Access(base + 4*setStride)
	if c.Probe(base) {
		t.Error("way 0 not evicted first")
	}
	c.Access(base + 5*setStride)
	if c.Probe(base + 1*setStride) {
		t.Error("way 1 not evicted second")
	}
}

func TestRandomReplacementEventuallyEvictsEachWay(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceRandom), 11)
	setStride := uint64(128 * 32)
	base := uint64(0x30000)
	evicted := make(map[uint64]bool)
	for trial := 0; trial < 200 && len(evicted) < 4; trial++ {
		c.Flush()
		for i := uint64(0); i < 4; i++ {
			c.Access(base + i*setStride)
		}
		c.Access(base + 100*setStride) // force one eviction
		for i := uint64(0); i < 4; i++ {
			if !c.Probe(base + i*setStride) {
				evicted[i] = true
			}
		}
	}
	if len(evicted) < 4 {
		t.Errorf("random replacement only ever evicted ways %v", evicted)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	if c.Write(0x5000) {
		t.Error("cold write hit")
	}
	// No-allocate: a subsequent read must still miss.
	if c.Access(0x5000) {
		t.Error("write allocated a line despite no-write-allocate")
	}
	// After the read fill, writes hit.
	if !c.Write(0x5000) {
		t.Error("write to resident line missed")
	}
	st := c.Stats()
	if st.WriteMisses != 1 || st.WriteHits != 1 {
		t.Errorf("write stats %+v", st)
	}
}

func TestWriteAllocate(t *testing.T) {
	cfg := il1Config(PlacementModulo, ReplaceLRU)
	cfg.WriteAllocate = true
	c := newCache(t, cfg, 0)
	c.Write(0x5000)
	if !c.Access(0x5000) {
		t.Error("write-allocate did not allocate")
	}
}

func TestFlushInvalidatesEverything(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	for i := uint64(0); i < 64; i++ {
		c.Access(0x1000 + i*32)
	}
	c.Flush()
	for i := uint64(0); i < 64; i++ {
		if c.Probe(0x1000 + i*32) {
			t.Fatalf("line %d survived flush", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	c.Access(0x100)   // miss
	c.Access(0x100)   // hit
	c.Access(0x120)   // miss (next line)
	c.Write(0x100)    // write hit
	c.Write(0x999940) // write miss (different region)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.WriteHits != 1 || st.WriteMisses != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.Accesses() != 5 {
		t.Errorf("accesses = %d", st.Accesses())
	}
	if mr := st.MissRatio(); mr < 0.66 || mr > 0.67 {
		t.Errorf("miss ratio = %v", mr)
	}
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Error("ResetStats did not clear")
	}
	if (Stats{}).MissRatio() != 0 {
		t.Error("empty miss ratio != 0")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	c.Access(0x100)
	before := c.Stats()
	c.Probe(0x100)
	c.Probe(0x200)
	if c.Stats() != before {
		t.Error("Probe changed stats")
	}
}

func TestSequentialFootprintFitsWithoutConflict(t *testing.T) {
	// A footprint equal to the cache size, accessed twice, must fully
	// hit on the second pass under modulo and random-modulo placement
	// (LRU), because there are no self-conflicts.
	for _, p := range []Placement{PlacementModulo, PlacementRandomModulo} {
		c := newCache(t, il1Config(p, ReplaceLRU), 77)
		c.Reseed(123)
		nLines := c.Config().SizeBytes / c.Config().LineBytes
		for i := 0; i < nLines; i++ {
			c.Access(uint64(i * 32))
		}
		c.ResetStats()
		for i := 0; i < nLines; i++ {
			c.Access(uint64(i * 32))
		}
		if m := c.Stats().Misses; m != 0 {
			t.Errorf("%s: %d misses on resident sweep", p, m)
		}
	}
}

func TestRandomHashBreaksSequentialProperty(t *testing.T) {
	// Ablation sanity: pure hash placement does occasionally
	// self-conflict on a cache-sized contiguous footprint.
	conflicts := 0
	for seed := uint64(1); seed <= 10; seed++ {
		c := newCache(t, il1Config(PlacementRandomHash, ReplaceLRU), seed)
		c.Reseed(seed)
		nLines := c.Config().SizeBytes / c.Config().LineBytes
		counts := make(map[int]int)
		for i := 0; i < nLines; i++ {
			counts[c.SetOfForTest(uint64(i*32))]++
		}
		for _, n := range counts {
			if n > c.Config().Ways {
				conflicts++
				break
			}
		}
	}
	if conflicts == 0 {
		t.Error("hash placement never overloaded a set across 10 seeds; suspicious")
	}
}

func TestDirectMappedWorks(t *testing.T) {
	cfg := Config{Name: "DM", SizeBytes: 1024, LineBytes: 32, Ways: 1,
		Placement: PlacementModulo, Replacement: ReplaceLRU}
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)
	c.Access(1024) // conflicts in direct-mapped
	if c.Probe(0) {
		t.Error("direct-mapped conflict did not evict")
	}
}

func TestEvictionCounter(t *testing.T) {
	c := newCache(t, il1Config(PlacementModulo, ReplaceLRU), 0)
	setStride := uint64(128 * 32)
	for i := uint64(0); i < 6; i++ {
		c.Access(0x1000 + i*setStride)
	}
	if ev := c.Stats().Evictions; ev != 2 {
		t.Errorf("evictions = %d, want 2", ev)
	}
}
