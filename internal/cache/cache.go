// Package cache models the first-level set-associative caches of the
// platform, in both the baseline deterministic flavour (modulo placement
// + LRU replacement) and the MBPTA-compliant time-randomized flavour
// (random-modulo placement, Hernandez et al. DAC 2016, + random
// replacement, Kosmidis et al. DATE 2013).
//
// Random modulo keeps the key property of modulo placement — a sequence
// of addresses with consecutive line indices and the same tag never
// conflicts with itself — while making the concrete set of any given
// line a per-run random variable: the set index is the modulo index
// rotated by a hash of (seed, tag). A fresh seed per run therefore
// re-rolls the program's cache layout exactly as the paper's protocol
// prescribes ("we set a new seed for each experiment after the binary
// has been reloaded").
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/rng"
)

// Placement selects the set-index function.
type Placement string

// Placement policies.
const (
	PlacementModulo       Placement = "modulo"        // deterministic: index bits
	PlacementRandomModulo Placement = "random-modulo" // DAC'16 random modulo
	PlacementRandomHash   Placement = "random-hash"   // pure hash of line address (ablation)
)

// Replacement selects the victim-way policy.
type Replacement string

// Replacement policies.
const (
	ReplaceLRU        Replacement = "lru"
	ReplaceRandom     Replacement = "random"
	ReplaceRoundRobin Replacement = "round-robin"
)

// Config is the geometry and policy of one cache.
type Config struct {
	Name        string
	SizeBytes   int
	LineBytes   int
	Ways        int
	Placement   Placement
	Replacement Replacement
	// WriteAllocate selects whether stores allocate on miss. The
	// platform's DL1 is write-through no-write-allocate, so this is
	// false there; it is configurable for ablations.
	WriteAllocate bool
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line (%d)",
			c.Name, c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	switch c.Placement {
	case PlacementModulo, PlacementRandomModulo, PlacementRandomHash:
	default:
		return fmt.Errorf("cache %q: unknown placement %q", c.Name, c.Placement)
	}
	switch c.Replacement {
	case ReplaceLRU, ReplaceRandom, ReplaceRoundRobin:
	default:
		return fmt.Errorf("cache %q: unknown replacement %q", c.Name, c.Replacement)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Stats counts cache events since the last ResetStats.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	WriteHits   uint64 // write-through stores that hit
	WriteMisses uint64 // write-through stores that missed (no allocate)
	MRUHits     uint64 // hits (read or write) served by the same-line fast path
}

// Accesses returns total demand accesses.
func (s Stats) Accesses() uint64 {
	return s.Hits + s.Misses + s.WriteHits + s.WriteMisses
}

// MissRatio returns misses/(hits+misses) over read accesses.
func (s Stats) MissRatio() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Misses) / float64(tot)
}

type line struct {
	valid bool
	tag   uint64
	// lru is a recency stamp for LRU; for round-robin the set keeps a
	// cursor instead.
	lru uint64
}

// placeKind is the pre-resolved placement dispatch tag: Access/Write run
// once per simulated instruction, so the policy switch must be an integer
// compare, not a string compare on Config.Placement.
type placeKind uint8

const (
	placeModulo placeKind = iota
	placeRandomModulo
	placeRandomHash
)

// replKind is the pre-resolved replacement dispatch tag.
type replKind uint8

const (
	replLRU replKind = iota
	replRandom
	replRoundRobin
)

// Cache is one level-one cache instance. It is not safe for concurrent
// use; each core owns its caches, as in the modeled hardware.
//
// The line array is a single flat slab indexed by set*ways+way (rather
// than a per-set slice-of-slices), so a lookup is one bounds-checked
// slice access with no pointer chase and Flush is one slab-wide clear.
type Cache struct {
	cfg       Config
	lines     []line // flat slab: lines[set*ways+way]
	rrCursor  []int  // round-robin cursor per set
	clock     uint64
	seed      uint64
	rnd       rng.Source
	stats     Stats
	lineShift uint
	setMask   uint64
	ways      int
	indexBits uint // number of set-index bits (popcount of setMask)
	place     placeKind
	repl      replKind

	// Most-recent-line record: the line touched by the last hit or
	// fill. That line is necessarily still resident when the next
	// access arrives (no intervening access can have evicted it), so an
	// access to the same line address short-circuits placement hashing
	// and the way scan with identical side effects. Tag-array fault
	// injection can invalidate the "tag matches line address" premise,
	// so mruOff bypasses the record from the first upset until Flush.
	lastLA   uint64
	lastLine int32 // flat index into lines; -1 = no record
	mruOff   bool
}

// New builds a cache from cfg, drawing placement/replacement randomness
// from src (may be nil for fully deterministic configurations; required
// for random placement or replacement).
func New(cfg Config, src rng.Source) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	needsRand := cfg.Placement != PlacementModulo || cfg.Replacement == ReplaceRandom
	if needsRand && src == nil {
		return nil, fmt.Errorf("cache %q: randomized policy requires an rng source", cfg.Name)
	}
	c := &Cache{
		cfg:      cfg,
		rnd:      src,
		lines:    make([]line, cfg.Sets()*cfg.Ways),
		rrCursor: make([]int, cfg.Sets()),
		ways:     cfg.Ways,
		lastLine: -1,
	}
	c.lineShift = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	c.setMask = uint64(cfg.Sets() - 1)
	c.indexBits = uint(bits.OnesCount64(c.setMask))
	switch cfg.Placement {
	case PlacementModulo:
		c.place = placeModulo
	case PlacementRandomModulo:
		c.place = placeRandomModulo
	case PlacementRandomHash:
		c.place = placeRandomHash
	}
	switch cfg.Replacement {
	case ReplaceLRU:
		c.repl = replLRU
	case ReplaceRandom:
		c.repl = replRandom
	case ReplaceRoundRobin:
		c.repl = replRoundRobin
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates every line — the paper's protocol flushes caches
// between measurement runs. With the flat slab this is two bulk clears
// (compiled to memclr) instead of a per-set loop nest.
func (c *Cache) Flush() {
	clear(c.lines)
	clear(c.rrCursor)
	c.lastLine = -1
	c.mruOff = false
}

// Reseed installs the per-run placement seed. Under random modulo this
// re-rolls the memory layout's cache mapping; under modulo placement it
// has no effect (kept so callers can treat both platforms uniformly).
func (c *Cache) Reseed(seed uint64) {
	c.seed = seed
	// The record's residency argument assumed a fixed placement mapping;
	// after a reseed the same line address maps elsewhere.
	c.lastLine = -1
}

// lineAddr strips the offset bits.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// tagOf returns the tag: the line address above the index bits. Note
// that under randomized placement the full line address must be stored
// (two different line addresses may share tag bits but map to the same
// set only under one seed), so we conservatively tag with the whole
// line address in all configurations.
func (c *Cache) tagOf(addr uint64) uint64 { return c.lineAddr(addr) }

// setOf implements the placement function.
func (c *Cache) setOf(addr uint64) int {
	la := c.lineAddr(addr)
	index := la & c.setMask
	switch c.place {
	case placeModulo:
		return int(index)
	case placeRandomModulo:
		// DAC'16 random modulo: rotate the modulo index by a hash of the
		// seed and the tag (the bits above the index). Lines sharing a
		// tag keep their relative order, so a contiguous region up to
		// Sets()*LineBytes never self-conflicts; distinct tags receive
		// independent rotations per seed.
		tag := la >> c.indexBits
		return int((index + hash64(c.seed, tag)) & c.setMask)
	default:
		// Pure hash placement: every line lands in an independent
		// random set; sacrifices the modulo non-conflict property
		// (provided for the E7 ablation).
		return int(hash64(c.seed, la) & c.setMask)
	}
}

// hash64 is a strong 64-bit mix of seed and value (splitmix64 finalizer
// over the xor), standing in for the parametric hardware hash of the
// random-modulo design.
func hash64(seed, v uint64) uint64 {
	z := seed ^ (v * 0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// setWays returns the slab window of one set.
func (c *Cache) setWays(set int) []line {
	base := set * c.ways
	return c.lines[base : base+c.ways]
}

// Access performs a read access (instruction fetch or load). It returns
// true on hit; on miss the line is allocated, evicting per policy.
func (c *Cache) Access(addr uint64) bool {
	la := c.lineAddr(addr)
	c.clock++
	if la == c.lastLA && c.lastLine >= 0 && !c.mruOff {
		// Same line as the previous access: still resident, and (absent
		// faults) the scan's first match. Skip placement and the way scan.
		c.lines[c.lastLine].lru = c.clock
		c.stats.Hits++
		c.stats.MRUHits++
		return true
	}
	set := c.setOf(addr)
	ways := c.setWays(set)
	for w := range ways {
		if ways[w].valid && ways[w].tag == la {
			ways[w].lru = c.clock
			c.stats.Hits++
			c.note(la, set, w)
			return true
		}
	}
	c.stats.Misses++
	c.note(la, set, c.fill(set, la))
	return false
}

// note records the line touched by a hit or fill for the fast path.
func (c *Cache) note(la uint64, set, way int) {
	c.lastLA = la
	c.lastLine = int32(set*c.ways + way)
}

// Write performs a store access. With write-through no-write-allocate
// (the platform's DL1 configuration) a write hit refreshes recency and a
// write miss does not allocate. With WriteAllocate it behaves like a
// read access for allocation purposes. Returns true on hit.
func (c *Cache) Write(addr uint64) bool {
	la := c.lineAddr(addr)
	c.clock++
	if la == c.lastLA && c.lastLine >= 0 && !c.mruOff {
		c.lines[c.lastLine].lru = c.clock
		c.stats.WriteHits++
		c.stats.MRUHits++
		return true
	}
	set := c.setOf(addr)
	ways := c.setWays(set)
	for w := range ways {
		if ways[w].valid && ways[w].tag == la {
			ways[w].lru = c.clock
			c.stats.WriteHits++
			c.note(la, set, w)
			return true
		}
	}
	c.stats.WriteMisses++
	if c.cfg.WriteAllocate {
		c.note(la, set, c.fill(set, la))
	}
	return false
}

// Probe reports whether addr is present without updating state or
// counters (test/debug aid).
func (c *Cache) Probe(addr uint64) bool {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for _, l := range c.setWays(set) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// fill allocates tag into set, choosing a victim per policy, and
// returns the way the line landed in.
func (c *Cache) fill(set int, tag uint64) int {
	ways := c.setWays(set)
	// Prefer an invalid way.
	for w := range ways {
		if !ways[w].valid {
			ways[w] = line{valid: true, tag: tag, lru: c.clock}
			return w
		}
	}
	var victim int
	switch c.repl {
	case replLRU:
		victim = 0
		for w := 1; w < len(ways); w++ {
			if ways[w].lru < ways[victim].lru {
				victim = w
			}
		}
	case replRandom:
		victim = rng.Intn(c.rnd, len(ways))
	case replRoundRobin:
		victim = c.rrCursor[set]
		c.rrCursor[set] = (victim + 1) % len(ways)
	}
	c.stats.Evictions++
	ways[victim] = line{valid: true, tag: tag, lru: c.clock}
	return victim
}

// SetOfForTest exposes the placement function for property tests.
func (c *Cache) SetOfForTest(addr uint64) int { return c.setOf(addr) }

// InjectTagFault flips bit number bit of the tag stored at (set, way) —
// a single-event upset in the tag array. A flipped tag of a valid line
// turns later accesses to the original address into misses and may
// alias a different address onto stale contents; because the model
// carries no data, a tag upset can only perturb timing, never
// architectural results. Coordinates are reduced modulo the geometry so
// any values are safe.
func (c *Cache) InjectTagFault(set, way, bit int) {
	l := c.faultLine(set, way)
	l.tag ^= 1 << (uint(bit) % 64)
	// A flipped tag can break the record's "tag == line address" premise
	// and forge duplicate tags where scan order matters; bypass the
	// fast path until the next Flush.
	c.mruOff = true
}

// InjectStateFault flips the valid bit at (set, way) — an upset in the
// state array. A valid line silently vanishes (spurious miss later) or
// an invalid frame becomes visible with whatever tag the array held.
func (c *Cache) InjectStateFault(set, way int) {
	l := c.faultLine(set, way)
	l.valid = !l.valid
	c.mruOff = true
}

// Scrub invalidates the line at (set, way) — the scrubbing engine's
// repair action for a cell flagged by a parity/ECC sweep. Invalidation
// is always architecturally safe for a transparent cache (the worst
// case is a future miss), so scrubbing converts a potentially aliased
// upset into a bounded timing effect. Idempotent; coordinates are
// reduced modulo the geometry like the fault injectors'.
func (c *Cache) Scrub(set, way int) {
	c.faultLine(set, way).valid = false
	c.mruOff = true
}

func (c *Cache) faultLine(set, way int) *line {
	if set < 0 {
		set = -set
	}
	if way < 0 {
		way = -way
	}
	return &c.lines[(set&int(c.setMask))*c.ways+way%c.ways]
}
