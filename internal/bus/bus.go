// Package bus models the shared AMBA-style bus that propagates IL1/DL1
// misses and TLB walks from the cores to the DRAM controller. It keeps
// a single global timeline: requests are granted in timestamp order
// (first-come-first-served). The bus itself imposes no priority among
// cores — callers must present requests in non-decreasing timestamp
// order, and cross-core ties are broken by the platform's arbiter
// (fixed core-index priority, matching the deterministic arbiter of
// the reference architecture; see internal/platform's multicore
// co-simulation).
package bus

import (
	"fmt"
)

// Kind tags a bus transaction for statistics and latency selection.
type Kind uint8

// Transaction kinds.
const (
	KindLineFill Kind = iota // cache line refill (IL1 or DL1 miss)
	KindWrite                // write-through store drain
	KindTLBWalk              // one page-table-walk access
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLineFill:
		return "fill"
	case KindWrite:
		return "write"
	case KindTLBWalk:
		return "walk"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config sets the bus timing.
type Config struct {
	// TransferCycles is the bus occupancy of one transaction (command +
	// data beats), excluding the memory access time behind it.
	TransferCycles uint64
	// Cores is the number of requestors for round-robin arbitration.
	Cores int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TransferCycles < 1 {
		return fmt.Errorf("bus: transfer cycles %d < 1", c.TransferCycles)
	}
	if c.Cores < 1 {
		return fmt.Errorf("bus: cores %d < 1", c.Cores)
	}
	return nil
}

// Stats counts bus activity.
type Stats struct {
	Transactions uint64
	BusyCycles   uint64
	WaitCycles   uint64 // total queueing delay imposed on requestors
}

// Bus is the shared interconnect. It is driven by the platform's
// discrete-event loop, which guarantees requests arrive in
// non-decreasing completion order per core; the bus serializes
// cross-core requests on its single timeline.
type Bus struct {
	cfg    Config
	freeAt uint64 // first cycle the bus is idle
	stats  Stats
}

// New builds a bus.
func New(cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{cfg: cfg}, nil
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// Reset clears the timeline and counters (per-run protocol: the board
// is reset between measurement runs).
func (b *Bus) Reset() {
	b.freeAt = 0
	b.stats = Stats{}
}

// Request asks for the bus at time t on behalf of core. It returns the
// cycle at which the transfer starts; the transfer occupies the bus for
// TransferCycles from that point. The caller adds the memory latency
// behind the transfer (the DRAM controller has its own timeline).
func (b *Bus) Request(core int, t uint64, kind Kind) uint64 {
	if core < 0 || core >= b.cfg.Cores {
		panic(fmt.Sprintf("bus: core %d out of range [0,%d)", core, b.cfg.Cores))
	}
	start := t
	if b.freeAt > start {
		start = b.freeAt
	}
	b.stats.Transactions++
	b.stats.WaitCycles += start - t
	b.stats.BusyCycles += b.cfg.TransferCycles
	b.freeAt = start + b.cfg.TransferCycles
	return start
}

// Absorb folds a batch of transactions that were granted off-bus into
// the timeline and counters: tx transactions whose total queueing delay
// was wait, with the bus occupied through freeAt after the last one.
// The multicore arbiter uses it to commit a core's locally self-granted
// transactions (see internal/platform: arbitration windows) in one
// call; the outcome is identical to issuing the same sequence through
// Request.
func (b *Bus) Absorb(tx, wait, freeAt uint64) {
	b.stats.Transactions += tx
	b.stats.WaitCycles += wait
	b.stats.BusyCycles += tx * b.cfg.TransferCycles
	if freeAt > b.freeAt {
		b.freeAt = freeAt
	}
}

// FreeAt reports the first idle cycle (test/debug aid).
func (b *Bus) FreeAt() uint64 { return b.freeAt }

// TransferCycles returns the bus occupancy of one transaction,
// satisfying the cpu.Interconnect contract.
func (b *Bus) TransferCycles() uint64 { return b.cfg.TransferCycles }
