package bus

import (
	"testing"
	"testing/quick"
)

func newBus(t *testing.T) *Bus {
	t.Helper()
	b, err := New(Config{TransferCycles: 4, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestValidate(t *testing.T) {
	if err := (Config{TransferCycles: 1, Cores: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{TransferCycles: 0, Cores: 1}).Validate(); err == nil {
		t.Error("zero transfer accepted")
	}
	if err := (Config{TransferCycles: 1, Cores: 0}).Validate(); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestIdleBusGrantsImmediately(t *testing.T) {
	b := newBus(t)
	if start := b.Request(0, 100, KindLineFill); start != 100 {
		t.Errorf("start = %d, want 100", start)
	}
	if b.FreeAt() != 104 {
		t.Errorf("freeAt = %d, want 104", b.FreeAt())
	}
}

func TestContendedRequestsQueue(t *testing.T) {
	b := newBus(t)
	b.Request(0, 10, KindLineFill) // occupies 10..14
	start := b.Request(1, 11, KindWrite)
	if start != 14 {
		t.Errorf("second request start = %d, want 14", start)
	}
	st := b.Stats()
	if st.Transactions != 2 {
		t.Errorf("transactions = %d", st.Transactions)
	}
	if st.WaitCycles != 3 {
		t.Errorf("wait = %d, want 3", st.WaitCycles)
	}
	if st.BusyCycles != 8 {
		t.Errorf("busy = %d, want 8", st.BusyCycles)
	}
}

func TestLateRequestAfterIdleGap(t *testing.T) {
	b := newBus(t)
	b.Request(0, 0, KindLineFill)
	if start := b.Request(1, 1000, KindLineFill); start != 1000 {
		t.Errorf("start = %d, want 1000 (bus long idle)", start)
	}
}

func TestReset(t *testing.T) {
	b := newBus(t)
	b.Request(0, 0, KindLineFill)
	b.Reset()
	if b.FreeAt() != 0 || b.Stats() != (Stats{}) {
		t.Error("reset incomplete")
	}
}

func TestRequestPanicsOnBadCore(t *testing.T) {
	b := newBus(t)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core accepted")
		}
	}()
	b.Request(4, 0, KindLineFill)
}

func TestKindString(t *testing.T) {
	if KindLineFill.String() != "fill" || KindWrite.String() != "write" || KindTLBWalk.String() != "walk" {
		t.Error("kind names")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestGrantMonotonicityProperty(t *testing.T) {
	// Grants never start before the request time and never overlap.
	b := newBus(t)
	var lastEnd uint64
	tm := uint64(0)
	f := func(adv uint16, core uint8) bool {
		tm += uint64(adv % 100)
		c := int(core) % 4
		start := b.Request(c, tm, KindLineFill)
		if start < tm {
			return false
		}
		if start < lastEnd {
			return false
		}
		lastEnd = start + b.Config().TransferCycles
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNoCorePriorityState is the regression test for the arbitration
// cleanup: the bus must hold no per-core arbitration state (the old
// implementation carried a dead round-robin lastCore field), so grants
// are a function of request timestamps alone — which core issues a
// request must never change any grant or counter.
func TestNoCorePriorityState(t *testing.T) {
	times := []uint64{0, 1, 1, 2, 9, 30, 30, 31}
	coreOrders := [][]int{
		{0, 1, 2, 3, 0, 1, 2, 3},
		{3, 2, 1, 0, 3, 2, 1, 0},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{2, 2, 1, 3, 0, 0, 3, 1},
	}
	var wantStarts []uint64
	var wantStats Stats
	for i, cores := range coreOrders {
		b := newBus(t)
		starts := make([]uint64, len(times))
		for j, tm := range times {
			starts[j] = b.Request(cores[j], tm, KindLineFill)
		}
		if i == 0 {
			wantStarts, wantStats = starts, b.Stats()
			continue
		}
		for j := range starts {
			if starts[j] != wantStarts[j] {
				t.Errorf("core order %v: grant %d at %d, want %d (core identity changed a grant)",
					cores, j, starts[j], wantStarts[j])
			}
		}
		if b.Stats() != wantStats {
			t.Errorf("core order %v: stats %+v, want %+v", cores, b.Stats(), wantStats)
		}
	}
}

// TestAbsorbMatchesRequestSequence pins the self-grant window contract:
// absorbing a batch of off-bus grants must leave the bus in exactly the
// state the equivalent Request sequence would.
func TestAbsorbMatchesRequestSequence(t *testing.T) {
	times := []uint64{5, 6, 6, 40, 41}
	direct := newBus(t)
	for _, tm := range times {
		direct.Request(0, tm, KindWrite)
	}

	absorbed := newBus(t)
	// Replicate the port-side self-grant arithmetic: grant against a
	// private freeAt, accumulate wait, then commit in one Absorb.
	var freeAt, wait uint64
	for _, tm := range times {
		start := tm
		if freeAt > start {
			start = freeAt
		}
		wait += start - tm
		freeAt = start + absorbed.TransferCycles()
	}
	absorbed.Absorb(uint64(len(times)), wait, freeAt)

	if absorbed.Stats() != direct.Stats() {
		t.Errorf("absorbed stats %+v, direct stats %+v", absorbed.Stats(), direct.Stats())
	}
	if absorbed.FreeAt() != direct.FreeAt() {
		t.Errorf("absorbed freeAt %d, direct freeAt %d", absorbed.FreeAt(), direct.FreeAt())
	}
}
