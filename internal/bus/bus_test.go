package bus

import (
	"testing"
	"testing/quick"
)

func newBus(t *testing.T) *Bus {
	t.Helper()
	b, err := New(Config{TransferCycles: 4, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestValidate(t *testing.T) {
	if err := (Config{TransferCycles: 1, Cores: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{TransferCycles: 0, Cores: 1}).Validate(); err == nil {
		t.Error("zero transfer accepted")
	}
	if err := (Config{TransferCycles: 1, Cores: 0}).Validate(); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestIdleBusGrantsImmediately(t *testing.T) {
	b := newBus(t)
	if start := b.Request(0, 100, KindLineFill); start != 100 {
		t.Errorf("start = %d, want 100", start)
	}
	if b.FreeAt() != 104 {
		t.Errorf("freeAt = %d, want 104", b.FreeAt())
	}
}

func TestContendedRequestsQueue(t *testing.T) {
	b := newBus(t)
	b.Request(0, 10, KindLineFill) // occupies 10..14
	start := b.Request(1, 11, KindWrite)
	if start != 14 {
		t.Errorf("second request start = %d, want 14", start)
	}
	st := b.Stats()
	if st.Transactions != 2 {
		t.Errorf("transactions = %d", st.Transactions)
	}
	if st.WaitCycles != 3 {
		t.Errorf("wait = %d, want 3", st.WaitCycles)
	}
	if st.BusyCycles != 8 {
		t.Errorf("busy = %d, want 8", st.BusyCycles)
	}
}

func TestLateRequestAfterIdleGap(t *testing.T) {
	b := newBus(t)
	b.Request(0, 0, KindLineFill)
	if start := b.Request(1, 1000, KindLineFill); start != 1000 {
		t.Errorf("start = %d, want 1000 (bus long idle)", start)
	}
}

func TestReset(t *testing.T) {
	b := newBus(t)
	b.Request(0, 0, KindLineFill)
	b.Reset()
	if b.FreeAt() != 0 || b.Stats() != (Stats{}) {
		t.Error("reset incomplete")
	}
}

func TestRequestPanicsOnBadCore(t *testing.T) {
	b := newBus(t)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core accepted")
		}
	}()
	b.Request(4, 0, KindLineFill)
}

func TestKindString(t *testing.T) {
	if KindLineFill.String() != "fill" || KindWrite.String() != "write" || KindTLBWalk.String() != "walk" {
		t.Error("kind names")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestGrantMonotonicityProperty(t *testing.T) {
	// Grants never start before the request time and never overlap.
	b := newBus(t)
	var lastEnd uint64
	tm := uint64(0)
	f := func(adv uint16, core uint8) bool {
		tm += uint64(adv % 100)
		c := int(core) % 4
		start := b.Request(c, tm, KindLineFill)
		if start < tm {
			return false
		}
		if start < lastEnd {
			return false
		}
		lastEnd = start + b.Config().TransferCycles
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
