package mbta

import (
	"errors"
	"math"
	"testing"
)

func TestAnalyze(t *testing.T) {
	r, err := Analyze([]float64{100, 300, 200})
	if err != nil {
		t.Fatal(err)
	}
	if r.HWM != 300 || r.N != 3 {
		t.Errorf("result %+v", r)
	}
	if math.Abs(r.Mean-200) > 1e-12 {
		t.Errorf("mean %v", r.Mean)
	}
	if _, err := Analyze(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestWCETMargins(t *testing.T) {
	r := Result{HWM: 1000}
	for _, c := range []struct{ margin, want float64 }{
		{0, 1000}, {0.2, 1200}, {0.5, 1500},
	} {
		got, err := r.WCET(c.margin)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("WCET(%v) = %v, want %v", c.margin, got, c.want)
		}
	}
	if _, err := r.WCET(-0.1); err == nil {
		t.Error("negative margin accepted")
	}
}

func TestAnalyzeByPath(t *testing.T) {
	per, env, err := AnalyzeByPath(map[string][]float64{
		"a": {10, 20},
		"b": {5, 50, 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if per["a"].HWM != 20 || per["b"].HWM != 50 {
		t.Errorf("per-path %+v", per)
	}
	if env.HWM != 50 || env.N != 5 {
		t.Errorf("envelope %+v", env)
	}
	if _, _, err := AnalyzeByPath(nil); !errors.Is(err, ErrNoData) {
		t.Error("empty map accepted")
	}
	if _, _, err := AnalyzeByPath(map[string][]float64{"x": nil}); err == nil {
		t.Error("empty path accepted")
	}
}
