// Package mbta implements the industrial baseline the paper compares
// against: classical measurement-based timing analysis on the
// deterministic platform. The practice is to take the high-watermark
// (HWM — the largest observed execution time) and inflate it by an
// engineering margin (e.g. 20% or 50%) to cover untested conditions
// such as unlucky cache placements. The paper's Figure 3 places the
// MBPTA pWCET estimates next to DET HWM + 50%.
package mbta

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ErrNoData is returned for empty samples.
var ErrNoData = errors.New("mbta: no observations")

// Result is a classical MBTA outcome.
type Result struct {
	N    int
	HWM  float64 // high watermark: max observed execution time
	Mean float64
}

// Analyze computes the high-watermark result of a measurement series.
func Analyze(times []float64) (Result, error) {
	if len(times) == 0 {
		return Result{}, ErrNoData
	}
	hwm, err := stats.Max(times)
	if err != nil {
		return Result{}, err
	}
	mean, err := stats.Mean(times)
	if err != nil {
		return Result{}, err
	}
	return Result{N: len(times), HWM: hwm, Mean: mean}, nil
}

// WCET returns the engineering-margin WCET estimate HWM * (1+margin),
// e.g. margin = 0.5 for the customary "+50%".
func (r Result) WCET(margin float64) (float64, error) {
	if margin < 0 {
		return 0, fmt.Errorf("mbta: negative margin %v", margin)
	}
	return r.HWM * (1 + margin), nil
}

// AnalyzeByPath computes per-path HWM results and the cross-path
// envelope (max of HWMs), mirroring per-path MBPTA.
func AnalyzeByPath(byPath map[string][]float64) (map[string]Result, Result, error) {
	if len(byPath) == 0 {
		return nil, Result{}, ErrNoData
	}
	out := make(map[string]Result, len(byPath))
	var all []float64
	for p, ts := range byPath {
		r, err := Analyze(ts)
		if err != nil {
			return nil, Result{}, fmt.Errorf("path %q: %w", p, err)
		}
		out[p] = r
		all = append(all, ts...)
	}
	env, err := Analyze(all)
	if err != nil {
		return nil, Result{}, err
	}
	return out, env, nil
}
