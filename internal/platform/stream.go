package platform

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrCanceled reports that a campaign was interrupted by its context
// before completing. Errors returned for a canceled campaign match both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()).
var ErrCanceled = errors.New("platform: campaign canceled")

// ErrRunTimeout reports that a single run exceeded StreamOptions.
// RunTimeout. The run is retried under the campaign's RetryPolicy; the
// error surfaces only once the attempts are exhausted.
var ErrRunTimeout = errors.New("platform: run timed out")

// RunFunc executes one measurement run on a worker's platform. It is
// the per-run extension point of StreamCampaign: the default is
// (*Platform).RunCtx; a fault-injection layer substitutes its own
// executor. Implementations must derive all randomness from seed so the
// campaign stays reproducible, and should return promptly once ctx is
// canceled.
type RunFunc func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error)

// RetryPolicy bounds the re-execution of runs that fail with a genuine
// error (worker fault, timeout) — not of quarantined runs, which are
// valid outcomes. The zero value means fail fast (one attempt).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per run (<= 1 means one).
	MaxAttempts int
	// Backoff is the sleep before the first retry; it doubles on each
	// further retry. Zero retries immediately.
	Backoff time.Duration
}

// StreamOptions tunes StreamCampaign.
type StreamOptions struct {
	// MaxRuns is the campaign's run budget (required, >= 1). The
	// campaign ends after MaxRuns runs unless the sink stops it earlier.
	MaxRuns int
	// BatchSize is the number of runs executed between sink calls
	// (default 250). Batching never changes results: run i always uses
	// seed DeriveRunSeed(BaseSeed, i) and results are stored by run
	// index, so the measured series is identical for any batch size —
	// only the stop decision granularity changes.
	BatchSize int
	// Parallel is the number of worker platforms (0 = GOMAXPROCS).
	// Parallelism does not affect results either: batches are barriers,
	// so the sink always observes a complete, ordered prefix.
	Parallel int
	// BaseSeed derives the per-run seeds; the same BaseSeed reproduces
	// the campaign bit-for-bit.
	BaseSeed uint64
	// Runner substitutes the per-run executor (nil = (*Platform).RunCtx,
	// which it must behave like for a context that never fires). The
	// fault-injection layer plugs in here.
	Runner RunFunc
	// RunTimeout bounds each run attempt's wall-clock time; an attempt
	// exceeding it fails with an error matching ErrRunTimeout and is
	// retried under Retry. Zero means no per-run deadline.
	RunTimeout time.Duration
	// Retry re-executes failed run attempts. Retries reuse the same
	// per-run seed, so a retry that succeeds yields the exact result the
	// first attempt would have.
	Retry RetryPolicy
	// Telemetry attaches a metrics/event registry to the campaign. Nil
	// disables telemetry entirely: the run loop is bit-identical and
	// allocation-identical to an untelemetered campaign. When set, the
	// engine harvests simulator and campaign instruments at each batch
	// barrier and emits the structured event stream (campaign_start,
	// run, batch, campaign_end) in deterministic order.
	Telemetry *telemetry.Registry
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 250
	}
	if o.BatchSize > o.MaxRuns {
		o.BatchSize = o.MaxRuns
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Parallel > o.BatchSize {
		o.Parallel = o.BatchSize
	}
	return o
}

// Batch is one completed, ordered slice of a streaming campaign.
type Batch struct {
	// Index is the 0-based batch number.
	Index int
	// Start is the run index of Results[0].
	Start int
	// Results holds runs Start .. Start+len(Results)-1 in run order. The
	// slice aliases the campaign's backing array; treat it as read-only.
	Results []RunResult
}

// BatchSink consumes a completed batch. Returning stop=true ends the
// campaign gracefully after this batch; returning an error aborts it.
// A nil sink streams to nobody (a plain fixed-size campaign).
type BatchSink func(b Batch) (stop bool, err error)

// StreamCampaign executes a measurement campaign in deterministic
// batches: workers run a batch in parallel, the batch completes as a
// barrier, and the sink observes the ordered prefix collected so far —
// the primitive behind convergence-driven early stopping. The protocol
// guarantees of RunCampaign carry over: run i always uses
// DeriveRunSeed(BaseSeed, i), so neither Parallel nor BatchSize can
// change the measured series.
//
// On the first worker error the remaining workers stop at their next
// run boundary and the error is returned; when several workers fail,
// all distinct errors are reported via errors.Join. Context
// cancellation likewise stops the workers promptly and returns an error
// matching errors.Is(err, ErrCanceled).
func StreamCampaign(ctx context.Context, cfg Config, w Workload, opts StreamOptions, sink BatchSink) (*CampaignResult, error) {
	if opts.MaxRuns < 1 {
		return nil, fmt.Errorf("platform: campaign needs >= 1 run, got %d", opts.MaxRuns)
	}
	o := opts.withDefaults()

	// One platform per worker, reused across batches: PrepareRun resets
	// every stateful resource, so reuse is protocol-compliant.
	boards := make([]*Platform, o.Parallel)
	for i := range boards {
		p, err := New(cfg)
		if err != nil {
			return nil, err
		}
		boards[i] = p
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var tele *streamTele
	if o.Telemetry != nil {
		tele = newStreamTele(o.Telemetry, boards, o, w.Name())
	}

	res := &CampaignResult{
		Platform: cfg.Name,
		Workload: w.Name(),
		Results:  make([]RunResult, 0, o.MaxRuns),
	}
	stopped := false
	for batch := 0; len(res.Results) < o.MaxRuns; batch++ {
		start := len(res.Results)
		batchStart := time.Now()
		n := o.BatchSize
		if start+n > o.MaxRuns {
			n = o.MaxRuns - start
		}
		res.Results = res.Results[:start+n]
		out := res.Results[start : start+n]

		next := make(chan int, n)
		for i := 0; i < n; i++ {
			next <- start + i
		}
		close(next)

		errs := make([]error, len(boards))
		var wg sync.WaitGroup
		for wk, board := range boards {
			wg.Add(1)
			go func(wk int, board *Platform) {
				defer wg.Done()
				for run := range next {
					if runCtx.Err() != nil {
						return
					}
					r, err := runResilient(runCtx, o, board, w, run)
					if err != nil {
						errs[wk] = err
						cancel() // stop the other workers at their next run boundary
						return
					}
					out[run-start] = r
				}
			}(wk, board)
		}
		wg.Wait()

		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w after %d runs: %w", ErrCanceled, start, err)
		}
		if err := joinDistinct(errs); err != nil {
			return nil, err
		}
		b := Batch{Index: batch, Start: start, Results: out}
		if tele != nil {
			tele.observeBatch(b, boards, time.Since(batchStart))
		}
		if sink != nil {
			stop, err := sink(b)
			if err != nil {
				return nil, err
			}
			if stop {
				stopped = true
				break
			}
		}
	}
	if tele != nil {
		tele.finish(len(res.Results), stopped)
	}
	return res, nil
}

// runResilient executes one run through the configured Runner with the
// campaign's per-run timeout and retry policy. Quarantined runs are
// successes here — only genuine errors (including timeouts) retry, each
// attempt reusing the same derived seed.
func runResilient(ctx context.Context, o StreamOptions, board *Platform, w Workload, run int) (RunResult, error) {
	seed := DeriveRunSeed(o.BaseSeed, run)
	runner := o.Runner
	if runner == nil {
		runner = func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
			return p.RunCtx(ctx, w, run, seed)
		}
	}
	attempts := o.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 && o.Retry.Backoff > 0 {
			// Exponential backoff: Backoff, 2*Backoff, 4*Backoff, ...
			d := o.Retry.Backoff << (a - 1)
			if d <= 0 || d > time.Minute {
				d = time.Minute
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return RunResult{}, ctx.Err()
			case <-t.C:
			}
		}
		attemptCtx, cancelAttempt := ctx, context.CancelFunc(nil)
		if o.RunTimeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeout(ctx, o.RunTimeout)
		}
		r, err := runner(attemptCtx, board, w, run, seed)
		timedOut := cancelAttempt != nil && attemptCtx.Err() == context.DeadlineExceeded
		if cancelAttempt != nil {
			cancelAttempt()
		}
		if err == nil {
			return r, nil
		}
		if ctx.Err() != nil {
			// The campaign itself was canceled; don't spin on retries.
			return RunResult{}, err
		}
		if timedOut {
			err = fmt.Errorf("%w: run %d exceeded %s: %v", ErrRunTimeout, run, o.RunTimeout, err)
			o.Telemetry.Counter("campaign_run_timeouts_total").Inc()
		}
		if a+1 < attempts {
			o.Telemetry.Counter("campaign_run_retries_total").Inc()
		}
		lastErr = err
	}
	if attempts > 1 {
		return RunResult{}, fmt.Errorf("platform: run %d failed after %d attempts: %w", run, attempts, lastErr)
	}
	return RunResult{}, lastErr
}

// joinDistinct combines worker errors, dropping nils and duplicates
// (several workers often fail identically), so the caller sees every
// distinct failure exactly once.
func joinDistinct(errs []error) error {
	seen := make(map[string]bool, len(errs))
	var out []error
	for _, err := range errs {
		if err == nil || seen[err.Error()] {
			continue
		}
		seen[err.Error()] = true
		out = append(out, err)
	}
	return errors.Join(out...)
}
