package platform

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ErrCanceled reports that a campaign was interrupted by its context
// before completing. Errors returned for a canceled campaign match both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()).
var ErrCanceled = errors.New("platform: campaign canceled")

// ErrRunTimeout reports that a single run exceeded StreamOptions.
// RunTimeout. The run is retried under the campaign's RetryPolicy; the
// error surfaces only once the attempts are exhausted.
var ErrRunTimeout = errors.New("platform: run timed out")

// ErrWorkerPanic reports that a worker panicked while executing a run.
// The panic is recovered at the run boundary and — like a timeout —
// handled by the supervision policy: the worker restarts on a fresh
// board and the run is re-queued seed-preserved.
var ErrWorkerPanic = errors.New("platform: worker panicked")

// ErrDegraded reports that a campaign gave up on its workers: the
// consecutive-restart budget (SupervisionPolicy.MaxRestarts) was
// exhausted without a successful run in between. A degraded campaign is
// not a crash — the engine flushes every completed run to the journal
// and returns the partial (statistically clean) sample alongside an
// error matching errors.Is(err, ErrDegraded) that wraps the restart
// causes via errors.Join.
var ErrDegraded = errors.New("platform: campaign degraded, worker restart budget exhausted")

// RunFunc executes one measurement run on a worker's platform. It is
// the per-run extension point of StreamCampaign: the default is
// (*Platform).RunCtx; a fault-injection layer substitutes its own
// executor. Implementations must derive all randomness from seed so the
// campaign stays reproducible, and should return promptly once ctx is
// canceled.
type RunFunc func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error)

// RetryPolicy bounds the re-execution of runs that fail with a genuine
// error (worker fault, timeout) — not of quarantined runs, which are
// valid outcomes. The zero value means fail fast (one attempt).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per run (<= 1 means one).
	MaxAttempts int
	// Backoff is the sleep before the first retry; it doubles on each
	// further retry. Zero retries immediately.
	Backoff time.Duration
}

// SupervisionPolicy bounds worker restarts. A worker is restarted (on a
// fresh board, with backoff, the in-flight run re-queued under its
// original seed) when a run panics or times out past its retry budget;
// other errors still fail the campaign immediately. The zero value
// selects the defaults: 8 consecutive restarts, 10ms initial backoff.
// MaxRestarts < 0 disables restarts entirely — a panic or exhausted
// timeout then aborts the campaign like any other worker error.
type SupervisionPolicy struct {
	// MaxRestarts is the number of consecutive restarts (across all
	// workers, reset by any successful run) tolerated before the
	// campaign degrades with ErrDegraded. 0 selects 8; < 0 disables
	// restarts.
	MaxRestarts int
	// Backoff is the sleep before the first restart; it doubles on each
	// consecutive restart, capped at 1s. 0 selects 10ms.
	Backoff time.Duration
}

func (p SupervisionPolicy) withDefaults() SupervisionPolicy {
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 8
	}
	if p.Backoff <= 0 {
		p.Backoff = 10 * time.Millisecond
	}
	return p
}

// Journal persists a campaign's progress for crash recovery. The engine
// drives it single-threaded from the batch barrier: LogRun for each
// newly completed run in run order, then Barrier after the sink has
// observed the batch (the implementation checkpoints derived state and
// makes everything durable). Flush is called instead of Barrier when
// the campaign ends mid-batch — cancellation or degradation — so
// completed runs are durable even without a new checkpoint.
type Journal interface {
	LogRun(run int, seed uint64, r RunResult) error
	Barrier(b Batch) error
	Flush() error
}

// ResumeState primes StreamCampaign with the journaled progress of an
// interrupted campaign. Prefix holds every journaled result (a
// contiguous run prefix); Delivered counts the runs the sink had
// already observed before the crash (the last checkpoint). Runs between
// Delivered and len(Prefix) — a cancellation-flushed partial batch —
// are not re-executed: they fill the head of batch StartBatch, and the
// engine executes only the missing seeds.
type ResumeState struct {
	StartBatch int
	Delivered  int
	Prefix     []RunResult
	// Stopped marks a journal whose campaign had already ended at the
	// last barrier (its stop rule fired). No further runs execute: the
	// campaign returns the journaled prefix, emitting only the
	// campaign-end telemetry.
	Stopped bool
}

func (rs *ResumeState) validate(o StreamOptions) error {
	switch {
	case rs.Delivered < 0 || rs.Delivered > o.MaxRuns:
		return fmt.Errorf("platform: resume state delivered %d outside [0,%d]", rs.Delivered, o.MaxRuns)
	case len(rs.Prefix) < rs.Delivered || len(rs.Prefix) > o.MaxRuns:
		return fmt.Errorf("platform: resume prefix %d runs, delivered %d, budget %d", len(rs.Prefix), rs.Delivered, o.MaxRuns)
	case len(rs.Prefix)-rs.Delivered > o.BatchSize:
		return fmt.Errorf("platform: resume tail %d runs exceeds batch size %d", len(rs.Prefix)-rs.Delivered, o.BatchSize)
	case rs.Delivered < o.MaxRuns && rs.Delivered != rs.StartBatch*o.BatchSize:
		return fmt.Errorf("platform: resume state inconsistent: %d delivered runs at batch %d (batch size %d)", rs.Delivered, rs.StartBatch, o.BatchSize)
	case rs.Stopped && len(rs.Prefix) != rs.Delivered:
		return fmt.Errorf("platform: stopped resume state carries %d undelivered runs", len(rs.Prefix)-rs.Delivered)
	}
	return nil
}

// StreamOptions tunes StreamCampaign.
type StreamOptions struct {
	// MaxRuns is the campaign's run budget (required, >= 1). The
	// campaign ends after MaxRuns runs unless the sink stops it earlier.
	MaxRuns int
	// BatchSize is the number of runs executed between sink calls
	// (default 250). Batching never changes results: run i always uses
	// seed DeriveRunSeed(BaseSeed, i) and results are stored by run
	// index, so the measured series is identical for any batch size —
	// only the stop decision granularity changes.
	BatchSize int
	// Parallel is the number of worker platforms (0 = GOMAXPROCS).
	// Parallelism does not affect results either: batches are barriers,
	// so the sink always observes a complete, ordered prefix.
	Parallel int
	// BaseSeed derives the per-run seeds; the same BaseSeed reproduces
	// the campaign bit-for-bit.
	BaseSeed uint64
	// Runner substitutes the per-run executor (nil = Board.ExecuteRun,
	// which it must behave like for a context that never fires). The
	// fault-injection layer plugs in here; a non-nil Runner requires
	// single-core *Platform boards.
	Runner RunFunc
	// NewBoard substitutes the worker-board factory (nil = a fresh
	// single-core Platform built from the campaign's Config). The
	// multicore campaign path plugs in here, building co-simulated
	// Multicore boards; every board must honor the Board contract so
	// results stay placement-independent.
	NewBoard func() (Board, error)
	// Cached, when non-nil, short-circuits run execution with memoized
	// results: a hit skips the board, the runner, timeouts and retries
	// for that run. The scenario-matrix run cache plugs in here; see
	// ExecPolicy.Cached. Misses execute normally, so a partial cache
	// extends a campaign instead of restarting it.
	Cached func(run int) (RunResult, bool)
	// RunTimeout bounds each run attempt's wall-clock time; an attempt
	// exceeding it fails with an error matching ErrRunTimeout and is
	// retried under Retry. Zero means no per-run deadline.
	RunTimeout time.Duration
	// Retry re-executes failed run attempts. Retries reuse the same
	// per-run seed, so a retry that succeeds yields the exact result the
	// first attempt would have.
	Retry RetryPolicy
	// Supervise bounds worker restarts after panics and exhausted
	// timeouts (see SupervisionPolicy; the zero value enables the
	// defaults).
	Supervise SupervisionPolicy
	// Journal, when non-nil, receives every completed run and a barrier
	// call per batch, making the campaign crash-recoverable. Nil (the
	// default) keeps the engine free of durability work: the run loop is
	// bit-identical and allocation-identical to an unjournaled campaign.
	Journal Journal
	// Resume primes the campaign with journaled progress; see
	// ResumeState. Nil starts from run 0.
	Resume *ResumeState
	// Replay, when non-nil, runs right after the campaign_start event is
	// emitted and before any run executes — the resume path uses it to
	// re-emit the telemetry event stream of already-journaled batches so
	// a resumed campaign's JSONL is byte-identical to an uninterrupted
	// one.
	Replay func()
	// Telemetry attaches a metrics/event registry to the campaign. Nil
	// disables telemetry entirely: the run loop is bit-identical and
	// allocation-identical to an untelemetered campaign. When set, the
	// engine harvests simulator and campaign instruments at each batch
	// barrier and emits the structured event stream (campaign_start,
	// run, batch, campaign_end) in deterministic order.
	Telemetry *telemetry.Registry
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 250
	}
	if o.BatchSize > o.MaxRuns {
		o.BatchSize = o.MaxRuns
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Parallel > o.BatchSize {
		o.Parallel = o.BatchSize
	}
	return o
}

// Batch is one completed, ordered slice of a streaming campaign.
type Batch struct {
	// Index is the 0-based batch number.
	Index int
	// Start is the run index of Results[0].
	Start int
	// Results holds runs Start .. Start+len(Results)-1 in run order. The
	// slice aliases the campaign's backing array; treat it as read-only.
	Results []RunResult
}

// BatchSink consumes a completed batch. Returning stop=true ends the
// campaign gracefully after this batch; returning an error aborts it.
// A nil sink streams to nobody (a plain fixed-size campaign).
type BatchSink func(b Batch) (stop bool, err error)

// supervisor tracks the consecutive-restart budget shared by all
// workers of one campaign.
type supervisor struct {
	policy SupervisionPolicy
	tele   *telemetry.Registry

	consec atomic.Int64
	mu     sync.Mutex
	causes []error
}

func newSupervisor(p SupervisionPolicy, reg *telemetry.Registry) *supervisor {
	return &supervisor{policy: p.withDefaults(), tele: reg}
}

// noteSuccess resets the consecutive-restart budget after any
// successful run. The fast path (no restarts pending) is a single
// atomic load.
func (s *supervisor) noteSuccess() {
	if s.consec.Load() == 0 {
		return
	}
	s.consec.Store(0)
	s.mu.Lock()
	s.causes = nil
	s.mu.Unlock()
}

// restartable reports whether a run failure is a supervision matter
// (panic or exhausted timeout) rather than a campaign-fatal error.
func (s *supervisor) restartable(err error) bool {
	if s.policy.MaxRestarts < 0 {
		return false
	}
	return errors.Is(err, ErrWorkerPanic) || errors.Is(err, ErrRunTimeout)
}

// allowRestart records the failure and charges the restart budget.
// Returning false means the budget is exhausted: the campaign degrades.
func (s *supervisor) allowRestart(wk, run int, err error) bool {
	s.mu.Lock()
	s.causes = append(s.causes, fmt.Errorf("worker %d, run %d: %w", wk, run, err))
	s.mu.Unlock()
	n := s.consec.Add(1)
	if n > int64(s.policy.MaxRestarts) {
		s.tele.Gauge("campaign_degraded").Set(1)
		return false
	}
	s.tele.Counter("worker_restarts_total").Inc()
	return true
}

// degradedCauses returns the recorded failures when the budget was
// exhausted, nil otherwise.
func (s *supervisor) degradedCauses() []error {
	if s.consec.Load() <= int64(s.policy.MaxRestarts) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.causes...)
}

// backoff sleeps before a restart (doubling per consecutive restart,
// capped at 1s); returns false if ctx fires first.
func (s *supervisor) backoff(ctx context.Context) bool {
	d := s.policy.Backoff
	if n := s.consec.Load(); n > 1 {
		shift := n - 1
		if shift > 10 {
			shift = 10
		}
		d <<= shift
	}
	if d > time.Second {
		d = time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// StreamCampaign executes a measurement campaign in deterministic
// batches: workers run a batch in parallel, the batch completes as a
// barrier, and the sink observes the ordered prefix collected so far —
// the primitive behind convergence-driven early stopping. The protocol
// guarantees of RunCampaign carry over: run i always uses
// DeriveRunSeed(BaseSeed, i), so neither Parallel nor BatchSize can
// change the measured series.
//
// On the first worker error the remaining workers stop at their next
// run boundary and the error is returned; when several workers fail,
// all distinct errors are reported via errors.Join. Panics and
// exhausted timeouts are supervision matters instead (see
// SupervisionPolicy): the worker restarts on a fresh board and the run
// re-executes under its original seed, so a recovered hiccup leaves no
// trace in the measured series. Context cancellation stops the workers
// promptly; the completed contiguous run prefix of the current batch is
// flushed to the journal and returned as a partial result alongside an
// error matching errors.Is(err, ErrCanceled). A campaign that exhausts
// its restart budget ends the same way with ErrDegraded.
func StreamCampaign(ctx context.Context, cfg Config, w Workload, opts StreamOptions, sink BatchSink) (*CampaignResult, error) {
	if opts.MaxRuns < 1 {
		return nil, fmt.Errorf("platform: campaign needs >= 1 run, got %d", opts.MaxRuns)
	}
	o := opts.withDefaults()

	executed, delivered, batch0 := 0, 0, 0
	if o.Resume != nil {
		if err := o.Resume.validate(o); err != nil {
			return nil, err
		}
		executed = len(o.Resume.Prefix)
		delivered = o.Resume.Delivered
		batch0 = o.Resume.StartBatch
		o.Telemetry.Counter("campaign_resumes_total").Inc()
	}

	// One board per worker, reused across batches: PrepareRun resets
	// every stateful resource, so reuse is protocol-compliant. A
	// supervised restart swaps in a fresh board.
	newBoard := o.NewBoard
	if newBoard == nil {
		newBoard = func() (Board, error) { return New(cfg) }
	}
	boards := make([]Board, o.Parallel)
	for i := range boards {
		b, err := newBoard()
		if err != nil {
			return nil, err
		}
		boards[i] = b
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sup := newSupervisor(o.Supervise, o.Telemetry)
	pol := o.execPolicy()

	var tele *streamTele
	if o.Telemetry != nil {
		tele = newStreamTele(o.Telemetry, boards, o, cfg.Name, w.Name())
	}
	if o.Replay != nil {
		o.Replay()
	}

	res := &CampaignResult{
		Platform: cfg.Name,
		Workload: w.Name(),
		Results:  make([]RunResult, 0, o.MaxRuns),
	}
	if o.Resume != nil {
		res.Results = append(res.Results, o.Resume.Prefix...)
	}

	// finishPartial journals and returns the contiguous completed prefix
	// when the campaign ends mid-batch (cancellation or degradation).
	finishPartial := func(total, journaledFrom int) error {
		res.Results = res.Results[:total]
		if o.Journal == nil {
			return nil
		}
		for run := journaledFrom; run < total; run++ {
			if err := o.Journal.LogRun(run, DeriveRunSeed(o.BaseSeed, run), res.Results[run]); err != nil {
				return fmt.Errorf("platform: journal: %w", err)
			}
		}
		if err := o.Journal.Flush(); err != nil {
			return fmt.Errorf("platform: journal: %w", err)
		}
		return nil
	}

	stopped := o.Resume != nil && o.Resume.Stopped
	for batch := batch0; delivered < o.MaxRuns && !stopped; batch++ {
		start := delivered
		batchStart := time.Now()
		n := o.BatchSize
		if start+n > o.MaxRuns {
			n = o.MaxRuns - start
		}
		end := start + n
		if len(res.Results) < end {
			res.Results = res.Results[:end]
		}
		out := res.Results[start:end]
		// filled counts results this batch inherits from the resume
		// prefix (a cancellation-flushed tail): they are not re-executed.
		filled := executed - start
		if filled < 0 {
			filled = 0
		}
		if filled > n {
			filled = n
		}
		done := make([]bool, n)
		for i := 0; i < filled; i++ {
			done[i] = true
		}

		next := make(chan int, n-filled)
		for i := filled; i < n; i++ {
			next <- start + i
		}
		close(next)

		errs := make([]error, len(boards))
		var wg sync.WaitGroup
		for wk := range boards {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				pending := -1 // re-queued run after a supervised restart
				for {
					run := pending
					pending = -1
					if run < 0 {
						r, ok := <-next
						if !ok {
							return
						}
						run = r
					}
					if runCtx.Err() != nil {
						return
					}
					r, err := SafeExecuteRun(runCtx, boards[wk], w, o.BaseSeed, run, pol)
					if err == nil {
						out[run-start] = r
						done[run-start] = true
						sup.noteSuccess()
						continue
					}
					if runCtx.Err() != nil {
						return // campaign is already ending
					}
					if !sup.restartable(err) {
						errs[wk] = err
						cancel() // stop the other workers at their next run boundary
						return
					}
					if !sup.allowRestart(wk, run, err) {
						cancel() // degraded: end the campaign at the barrier
						return
					}
					if !sup.backoff(runCtx) {
						return
					}
					fresh, err := newBoard()
					if err != nil {
						errs[wk] = fmt.Errorf("platform: worker %d restart: %w", wk, err)
						cancel()
						return
					}
					boards[wk] = fresh
					pending = run // re-queue seed-preserved
				}
			}(wk)
		}
		wg.Wait()

		// k is the contiguous completed prefix of this batch — the only
		// part that is usable (and journalable) if the campaign ends here.
		k := 0
		for k < n && done[k] {
			k++
		}
		journaledFrom := start + filled

		if err := ctx.Err(); err != nil {
			if ferr := finishPartial(start+k, journaledFrom); ferr != nil {
				return nil, ferr
			}
			return res, fmt.Errorf("%w after %d runs: %w", ErrCanceled, start+k, err)
		}
		if causes := sup.degradedCauses(); causes != nil {
			if ferr := finishPartial(start+k, journaledFrom); ferr != nil {
				return nil, ferr
			}
			return res, fmt.Errorf("%w after %d runs: %w", ErrDegraded, start+k, errors.Join(causes...))
		}
		if err := joinDistinct(errs); err != nil {
			return nil, err
		}

		if executed < end {
			executed = end
		}
		if o.Journal != nil {
			for run := journaledFrom; run < end; run++ {
				if err := o.Journal.LogRun(run, DeriveRunSeed(o.BaseSeed, run), out[run-start]); err != nil {
					return nil, fmt.Errorf("platform: journal: %w", err)
				}
			}
		}
		b := Batch{Index: batch, Start: start, Results: out}
		if tele != nil {
			tele.observeBatch(b, boards, time.Since(batchStart))
		}
		if sink != nil {
			stop, err := sink(b)
			if err != nil {
				return nil, err
			}
			stopped = stop
		}
		if o.Journal != nil {
			if err := o.Journal.Barrier(b); err != nil {
				return nil, fmt.Errorf("platform: journal: %w", err)
			}
		}
		delivered = end
	}
	if tele != nil {
		tele.finish(len(res.Results), stopped)
	}
	return res, nil
}

// execPolicy translates the campaign options into the shared per-run
// execution policy (see ExecuteRun in executor.go).
func (o StreamOptions) execPolicy() ExecPolicy {
	pol := ExecPolicy{Runner: o.Runner, Cached: o.Cached, RunTimeout: o.RunTimeout, Retry: o.Retry}
	if o.Telemetry != nil {
		pol.counters = teleRetryCounters{reg: o.Telemetry}
	}
	return pol
}

// teleRetryCounters routes the retry loop's tallies into the campaign
// registry.
type teleRetryCounters struct{ reg *telemetry.Registry }

func (c teleRetryCounters) incTimeout() { c.reg.Counter("campaign_run_timeouts_total").Inc() }
func (c teleRetryCounters) incRetry()   { c.reg.Counter("campaign_run_retries_total").Inc() }

// joinDistinct combines worker errors, dropping nils and duplicates
// (several workers often fail identically), so the caller sees every
// distinct failure exactly once.
func joinDistinct(errs []error) error {
	seen := make(map[string]bool, len(errs))
	var out []error
	for _, err := range errs {
		if err == nil || seen[err.Error()] {
			continue
		}
		seen[err.Error()] = true
		out = append(out, err)
	}
	return errors.Join(out...)
}
