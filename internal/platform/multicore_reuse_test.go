package platform

// Tests for the reusable multicore board: error cancellation
// mid-campaign, scheduler-independence of the arbiter, and
// bit-equivalence of the interpreted and replayed execution modes.

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
)

// stableStreamer is the test streamer plus the Reloader/TraceStable
// contract, so the board records its event stream once and replays it
// on every later iteration and run.
type stableStreamer struct{ streamer }

func (s stableStreamer) Reload(m *isa.Machine, run int) error {
	m.Reset()
	return nil
}

func (s stableStreamer) TraceStable() bool { return true }

// opaqueWorkload hides a workload's Reloader/TraceStable identity from
// the board, forcing full interpretation of every iteration.
type opaqueWorkload struct{ w Workload }

func (o opaqueWorkload) Name() string                          { return o.w.Name() }
func (o opaqueWorkload) Prepare(run int) (*isa.Machine, error) { return o.w.Prepare(run) }
func (o opaqueWorkload) PathOf(m *isa.Machine) string          { return o.w.PathOf(m) }

// midFailWorkload runs a short streamer sweep, then fails Prepare on
// iteration failAt — a co-runner dying in the middle of a campaign,
// not on the first machine build.
type midFailWorkload struct {
	failAt int
}

var errMidFail = errors.New("co-runner died mid-campaign")

func (midFailWorkload) Name() string { return "mid-fail" }

func (w midFailWorkload) Prepare(iter int) (*isa.Machine, error) {
	if iter >= w.failAt {
		return nil, errMidFail
	}
	return streamer{lines: 64}.Prepare(iter)
}

func (midFailWorkload) PathOf(*isa.Machine) string { return "" }

// TestMulticoreCoRunnerMidCampaignFailureCancelsRun pins the fixed
// error-propagation contract: a co-runner that fails after completing
// earlier iterations must raise stop, cancel the (much longer-running)
// measured core, and surface as the run's root-cause error. Before the
// fix a mid-campaign failure left the measured core running to
// completion and could be masked entirely.
func TestMulticoreCoRunnerMidCampaignFailureCancelsRun(t *testing.T) {
	mc, err := NewMulticore(RAND(), []Workload{midFailWorkload{failAt: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The measured sweep is ~100x longer than one co-runner iteration:
	// without cancellation the run would only fail after the measured
	// core finished naturally.
	start := time.Now()
	_, err = mc.Run(streamer{lines: 1 << 17}, 0, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("mid-campaign co-runner failure did not fail the run")
	}
	if !errors.Is(err, errMidFail) {
		t.Errorf("run error %v does not wrap the co-runner failure", err)
	}
	if !strings.Contains(err.Error(), "core 1") {
		t.Errorf("run error %q does not name the failing core", err)
	}
	if strings.Contains(err.Error(), "core 0") {
		t.Errorf("cancelled measured core reported as root cause: %q", err)
	}
	// Cancellation is polled every few thousand instructions; seconds
	// would mean the measured core ran to completion.
	if elapsed > 30*time.Second {
		t.Errorf("run took %v; cancellation did not interrupt the measured core", elapsed)
	}
}

// TestMulticoreDeterministicAcrossGOMAXPROCS pins scheduler
// independence: the goroutine-mode arbiter must produce identical
// measurements whether the co-runner goroutines are serialized on one
// P or genuinely parallel. Non-stable co-runners force goroutine mode
// on every run.
func TestMulticoreDeterministicAcrossGOMAXPROCS(t *testing.T) {
	app := tinyTVCA(t)
	co := func() []Workload {
		return []Workload{streamer{lines: 256}, streamer{lines: 512}}
	}
	runBoard := func(procs int) []uint64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		mc, err := NewMulticore(RAND(), co())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, 6)
		for i := range out {
			r, err := mc.Run(app, i, DeriveRunSeed(21, i))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = r.Measured.Cycles
		}
		return out
	}
	serial := runBoard(1)
	parallel := runBoard(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("run %d: GOMAXPROCS=1 gives %d cycles, GOMAXPROCS=4 gives %d",
				i, serial[i], parallel[i])
		}
	}
}

// TestMulticoreReplayMatchesInterpretation is the replay-equivalence
// gate for the decode-once optimization: the same co-runner run once
// with its TraceStable contract visible (recorded, then replayed — the
// inline cursor path) and once hidden behind a wrapper (interpreted
// every iteration in goroutine mode) must give bit-identical
// measurements on every run.
func TestMulticoreReplayMatchesInterpretation(t *testing.T) {
	app := tinyTVCA(t)
	stable, err := NewMulticore(RAND(), []Workload{
		stableStreamer{streamer{lines: 256}},
		stableStreamer{streamer{lines: 512}},
	})
	if err != nil {
		t.Fatal(err)
	}
	opaque, err := NewMulticore(RAND(), []Workload{
		opaqueWorkload{stableStreamer{streamer{lines: 256}}},
		opaqueWorkload{stableStreamer{streamer{lines: 512}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 16
	for i := 0; i < runs; i++ {
		rs, err := stable.Run(app, i, DeriveRunSeed(5, i))
		if err != nil {
			t.Fatal(err)
		}
		ro, err := opaque.Run(app, i, DeriveRunSeed(5, i))
		if err != nil {
			t.Fatal(err)
		}
		if rs.Measured != ro.Measured {
			t.Errorf("run %d: replayed board measured %+v, interpreted board %+v",
				i, rs.Measured, ro.Measured)
		}
	}
	// Same comparison with a trace-stable measured workload, so the
	// stable board also replays the measured core (the fully-inline,
	// zero-goroutine path) while the opaque board still interprets.
	mw := stableStreamer{streamer{lines: 2048}}
	for i := 0; i < 4; i++ {
		rs, err := stable.Run(mw, i, DeriveRunSeed(11, i))
		if err != nil {
			t.Fatal(err)
		}
		ro, err := opaque.Run(opaqueWorkload{mw}, i, DeriveRunSeed(11, i))
		if err != nil {
			t.Fatal(err)
		}
		if rs.Measured != ro.Measured {
			t.Errorf("stable measured run %d: replayed board %+v, interpreted board %+v",
				i, rs.Measured, ro.Measured)
		}
	}
	// Both boards must actually have taken the modes the test names.
	if got := stable.BoardStats().ReplayRuns; got == 0 {
		t.Error("stable board never took the measured-replay path")
	}
	if got := opaque.BoardStats().ReplayRuns; got != 0 {
		t.Errorf("opaque board took the measured-replay path %d times", got)
	}
}
