package platform

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// TaskAware is a Workload that exposes its task layout (PC spans),
// enabling per-job execution-time measurement — the input to per-task
// MBPTA and probabilistic response-time analysis. PCs outside every
// span (the dispatcher / cyclic executive glue) belong to no task.
type TaskAware interface {
	Workload
	TaskSpans() []isa.Span
}

// ValidateSpans checks that spans are well-formed and disjoint.
func ValidateSpans(spans []isa.Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("platform: no task spans")
	}
	s := append([]isa.Span(nil), spans...)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	for i, sp := range s {
		if sp.End <= sp.Start {
			return fmt.Errorf("platform: span %q empty [%#x,%#x)", sp.Name, sp.Start, sp.End)
		}
		if i > 0 && sp.Start < s[i-1].End {
			return fmt.Errorf("platform: spans %q and %q overlap", s[i-1].Name, sp.Name)
		}
	}
	return nil
}

// JobTimes maps task name to the per-job execution times (cycles) in
// activation order. Cycles spent outside every span are reported under
// the pseudo-task "(dispatcher)" as a single figure per run.
type JobTimes map[string][]uint64

// RunPerTask performs one protocol-compliant measurement of w,
// additionally attributing cycles to task jobs by PC span. A job starts
// when execution enters a task's span and ends when it leaves it; the
// cyclic executive of the case study calls each task body once per
// activation, so jobs are contiguous (the measurement does not support
// preemption inside a span).
func (p *Platform) RunPerTask(w TaskAware, run int, runSeed uint64) (RunResult, JobTimes, error) {
	spans := w.TaskSpans()
	if err := ValidateSpans(spans); err != nil {
		return RunResult{}, nil, err
	}
	m, err := w.Prepare(run)
	if err != nil {
		return RunResult{}, nil, fmt.Errorf("platform %s: prepare run %d: %w", p.cfg.Name, run, err)
	}
	p.PrepareRun(runSeed)

	jobs := make(JobTimes)
	spanOf := func(pc uint64) int {
		for i := range spans {
			if pc >= spans[i].Start && pc < spans[i].End {
				return i
			}
		}
		return -1
	}
	current := -1 // span index of the running job
	var jobCycles, dispatchCycles uint64
	prev := p.core.Cycle()
	sink := func(ev isa.Event) {
		p.core.Consume(ev)
		now := p.core.Cycle()
		delta := now - prev
		prev = now
		sp := spanOf(ev.PC)
		if sp != current {
			if current >= 0 {
				name := spans[current].Name
				jobs[name] = append(jobs[name], jobCycles)
			}
			current = sp
			jobCycles = 0
		}
		if sp >= 0 {
			jobCycles += delta
		} else {
			dispatchCycles += delta
		}
	}
	if _, err := m.Run(sink); err != nil {
		return RunResult{}, nil, fmt.Errorf("platform %s: run %d: %w", p.cfg.Name, run, err)
	}
	if current >= 0 {
		jobs[spans[current].Name] = append(jobs[spans[current].Name], jobCycles)
	}
	jobs["(dispatcher)"] = []uint64{dispatchCycles}
	return RunResult{
		Cycles:       p.core.Cycle(),
		Instructions: p.core.Stats().Instructions,
		Path:         w.PathOf(m),
	}, jobs, nil
}

// PerTaskCampaign runs a protocol-compliant campaign of runs
// measurements with per-task attribution: the result maps each task to
// the concatenated per-job execution times across all runs (in run,
// then activation order) — directly analyzable with the MBPTA pipeline
// per task. Run i always uses seed DeriveRunSeed(baseSeed, i).
func PerTaskCampaign(cfg Config, w TaskAware, runs int, baseSeed uint64) (map[string][]float64, error) {
	if runs < 1 {
		return nil, fmt.Errorf("platform: campaign needs >= 1 run, got %d", runs)
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64)
	for run := 0; run < runs; run++ {
		_, jobs, err := p.RunPerTask(w, run, DeriveRunSeed(baseSeed, run))
		if err != nil {
			return nil, err
		}
		for task, times := range jobs {
			if task == "(dispatcher)" {
				continue
			}
			for _, t := range times {
				out[task] = append(out[task], float64(t))
			}
		}
	}
	return out, nil
}

// PerTaskWorstCampaign is the per-task campaign a certification-grade
// analysis actually uses: for each run, each task contributes its
// WORST job time. Within one run consecutive jobs of a task share
// warmed cache state and are therefore correlated (the i.i.d. gate
// rightly rejects concatenated job series); per-run maxima are i.i.d.
// across protocol-compliant runs and upper-bound every activation, so
// the fitted pWCET conservatively covers all jobs.
func PerTaskWorstCampaign(cfg Config, w TaskAware, runs int, baseSeed uint64) (map[string][]float64, error) {
	if runs < 1 {
		return nil, fmt.Errorf("platform: campaign needs >= 1 run, got %d", runs)
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64)
	for run := 0; run < runs; run++ {
		_, jobs, err := p.RunPerTask(w, run, DeriveRunSeed(baseSeed, run))
		if err != nil {
			return nil, err
		}
		for task, times := range jobs {
			if task == "(dispatcher)" {
				continue
			}
			worst := uint64(0)
			for _, t := range times {
				if t > worst {
					worst = t
				}
			}
			out[task] = append(out[task], float64(worst))
		}
	}
	return out, nil
}
