package platform

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/tvca"
)

// tinyTVCA is a cheap workload for co-simulation tests.
func tinyTVCA(t *testing.T) *tvca.App {
	t.Helper()
	cfg := tvca.DefaultConfig()
	cfg.Frames = 4
	cfg.Sensors = 8
	cfg.Taps = 8
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// streamer is a memory-streaming co-runner: it sweeps a large buffer,
// missing constantly — a worst-case-ish bus hog.
type streamer struct{ lines int32 }

func (s streamer) Name() string { return "streamer" }
func (s streamer) Prepare(run int) (*isa.Machine, error) {
	b := isa.NewBuilder("streamer", 0x8000)
	b.Li(1, 0x400000)
	b.Li(2, 0)
	b.Li(3, s.lines)
	b.Label("loop")
	b.Ld(4, 1, 0)
	b.Addi(1, 1, 32)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(p, isa.NewMemory()), nil
}
func (s streamer) PathOf(*isa.Machine) string { return "" }

func TestNewMulticoreValidation(t *testing.T) {
	app := tinyTVCA(t)
	if _, err := NewMulticore(RAND(), []Workload{app, app, app, app}); err == nil {
		t.Error("4 co-runners on a 4-core platform accepted")
	}
	if _, err := NewMulticore(RAND(), []Workload{nil}); err == nil {
		t.Error("nil co-runner accepted")
	}
	cfg := RAND()
	cfg.Interference = &InterferenceConfig{Cores: 1, PeriodCycles: 100}
	if _, err := NewMulticore(cfg, nil); err == nil {
		t.Error("interference + co-runners accepted")
	}
	if _, err := NewMulticore(RAND(), []Workload{app}); err != nil {
		t.Errorf("valid multicore rejected: %v", err)
	}
}

func TestMulticoreSoloMatchesSinglecore(t *testing.T) {
	// With no co-runners, the co-simulation must reproduce the
	// single-core platform's cycle count exactly (same seed derivation
	// differs, so compare against a Multicore-run with zero co-runners
	// twice for determinism, and against plausibility bounds).
	app := tinyTVCA(t)
	mc, err := NewMulticore(RAND(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := mc.Run(app, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mc.Run(app, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Measured != r2.Measured {
		t.Errorf("solo multicore not deterministic: %+v vs %+v", r1.Measured, r2.Measured)
	}
	if r1.Measured.Cycles == 0 || r1.Measured.Instructions == 0 {
		t.Errorf("empty measurement %+v", r1.Measured)
	}
}

func TestMulticoreDeterministicWithCoRunners(t *testing.T) {
	app := tinyTVCA(t)
	co := streamer{lines: 256}
	mc, err := NewMulticore(RAND(), []Workload{co, co, co})
	if err != nil {
		t.Fatal(err)
	}
	var first MulticoreResult
	for trial := 0; trial < 5; trial++ {
		r, err := mc.Run(app, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = r
			continue
		}
		if r.Measured != first.Measured {
			t.Fatalf("trial %d: measured %+v != %+v (goroutine-schedule dependence!)",
				trial, r.Measured, first.Measured)
		}
	}
}

func TestMulticoreContentionSlowsMeasuredCore(t *testing.T) {
	app := tinyTVCA(t)
	solo, err := NewMulticore(RAND(), nil)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NewMulticore(RAND(), []Workload{
		streamer{lines: 512}, streamer{lines: 512}, streamer{lines: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	slower := 0
	for run := 0; run < 4; run++ {
		rs, err := solo.Run(app, run, 5)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := noisy.Run(app, run, 5)
		if err != nil {
			t.Fatal(err)
		}
		if rn.Measured.Cycles > rs.Measured.Cycles {
			slower++
		}
		if rn.BusStats.WaitCycles == 0 {
			t.Error("no bus contention recorded with 3 streaming co-runners")
		}
	}
	if slower < 4 {
		t.Errorf("contention slowed only %d/4 runs", slower)
	}
}

func TestMulticoreCoRunnersMakeProgress(t *testing.T) {
	app := tinyTVCA(t)
	mc, err := NewMulticore(RAND(), []Workload{streamer{lines: 64}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.Run(app, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CoRunnerIterations) != 1 {
		t.Fatalf("iterations %v", r.CoRunnerIterations)
	}
	if r.CoRunnerIterations[0] == 0 {
		t.Error("co-runner completed no iterations during the measured run")
	}
}

func TestMulticoreArchitecturalResultUnaffected(t *testing.T) {
	// Contention changes timing, never results: the measured path must
	// match the single-core platform's for the same run index.
	app := tinyTVCA(t)
	p, err := New(RAND())
	if err != nil {
		t.Fatal(err)
	}
	single, err := p.Run(app, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMulticore(RAND(), []Workload{streamer{lines: 256}})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := mc.Run(app, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if single.Path != multi.Measured.Path {
		t.Errorf("path %q != %q", single.Path, multi.Measured.Path)
	}
	if single.Instructions != multi.Measured.Instructions {
		t.Errorf("instructions %d != %d", single.Instructions, multi.Measured.Instructions)
	}
}

// failingWorkload errors at Prepare to test propagation.
type failingWorkload struct{}

func (failingWorkload) Name() string { return "failing" }
func (failingWorkload) Prepare(int) (*isa.Machine, error) {
	return nil, errTest
}
func (failingWorkload) PathOf(*isa.Machine) string { return "" }

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic failure" }

func TestMulticoreCoRunnerErrorPropagates(t *testing.T) {
	app := tinyTVCA(t)
	mc, err := NewMulticore(RAND(), []Workload{failingWorkload{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Run(app, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("co-runner error not propagated: %v", err)
	}
}

func TestMulticoreMeasuredErrorPropagates(t *testing.T) {
	mc, err := NewMulticore(RAND(), []Workload{streamer{lines: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Run(failingWorkload{}, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("measured-core error not propagated: %v", err)
	}
}

func TestMulticoreSeedsChangeTiming(t *testing.T) {
	// Needs the cache-pressured workload geometry: the tiny test app
	// fits in the caches and is placement-insensitive.
	cfg := tvca.DefaultConfig()
	cfg.Frames = 4
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMulticore(RAND(), []Workload{streamer{lines: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for seed := uint64(1); seed <= 8; seed++ {
		r, err := mc.Run(app, 1, seed*7919)
		if err != nil {
			t.Fatal(err)
		}
		seen[r.Measured.Cycles] = true
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct timings over 8 seeds", len(seen))
	}
}
