// Package platform composes the substrate models (cores, caches, TLBs,
// FPU, bus, DRAM) into the two processor builds the paper compares:
//
//   - DET: the baseline deterministic LEON3 — modulo placement, LRU
//     replacement, operation-mode (operand-dependent) FPU. This is the
//     platform industrial MBTA practice measures, inflating the
//     high-watermark by an engineering factor.
//   - RAND: the MBPTA-compliant build — random-modulo placement and
//     random replacement in IL1/DL1, random replacement in ITLB/DTLB,
//     analysis-mode (fixed worst-case) FDIV/FSQRT.
//
// The package also implements the paper's measurement protocol: for
// every run the caches and TLBs are flushed, the board (bus, DRAM, core
// clock) is reset, the binary is reloaded (fresh machine + data
// segments) and a new PRNG seed is installed.
package platform

import (
	"context"
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/tlb"
)

// Config is a full platform description.
type Config struct {
	Name       string
	Cores      int
	CoreParams cpu.Params
	IL1        cache.Config
	DL1        cache.Config
	ITLB       tlb.Config
	DTLB       tlb.Config
	FPUMode    fpu.Mode
	FPULat     fpu.Latencies
	Bus        bus.Config
	DRAM       mem.Config
	RNGKind    rng.Kind
	// Interference, when non-nil, attaches synthetic bus traffic from
	// the other cores (co-runner model).
	Interference *InterferenceConfig
}

// InterferenceConfig models co-runner bus pressure: each of the other
// cores issues one line-fill-sized bus transaction every PeriodCycles,
// with the phase jittered per run on the RAND platform.
type InterferenceConfig struct {
	Cores        int    // number of interfering cores (<= Config.Cores-1)
	PeriodCycles uint64 // mean cycles between transactions per core
	Randomize    bool   // randomize phases/periods per run (RAND platform)
}

// Validate checks the full configuration.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("platform %q: cores %d < 1", c.Name, c.Cores)
	}
	if err := c.CoreParams.Validate(); err != nil {
		return err
	}
	for _, cc := range []cache.Config{c.IL1, c.DL1} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	for _, tc := range []tlb.Config{c.ITLB, c.DTLB} {
		if err := tc.Validate(); err != nil {
			return err
		}
	}
	if err := c.FPULat.Validate(); err != nil {
		return err
	}
	switch c.FPUMode {
	case fpu.ModeAnalysis, fpu.ModeOperation:
	default:
		return fmt.Errorf("platform %q: bad FPU mode %q", c.Name, c.FPUMode)
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if ic := c.Interference; ic != nil {
		if ic.Cores < 1 || ic.Cores > c.Cores-1 {
			return fmt.Errorf("platform %q: interference cores %d not in [1,%d]",
				c.Name, ic.Cores, c.Cores-1)
		}
		if ic.PeriodCycles < 1 {
			return fmt.Errorf("platform %q: interference period %d < 1", c.Name, ic.PeriodCycles)
		}
	}
	return nil
}

// reference geometry shared by both builds: 16KB 4-way 32B-line L1s,
// 64-entry TLBs, 4 cores, per the paper's platform section.
func baseConfig(name string) Config {
	return Config{
		Name:       name,
		Cores:      4,
		CoreParams: cpu.DefaultParams(),
		IL1: cache.Config{
			Name: "IL1", SizeBytes: 16 * 1024, LineBytes: 32, Ways: 4,
		},
		DL1: cache.Config{
			Name: "DL1", SizeBytes: 16 * 1024, LineBytes: 32, Ways: 4,
			WriteAllocate: false, // write-through no-write-allocate
		},
		ITLB: tlb.Config{
			Name: "ITLB", Entries: 64, PageBytes: 4096, WalkAccesses: 2,
		},
		DTLB: tlb.Config{
			Name: "DTLB", Entries: 64, PageBytes: 4096, WalkAccesses: 2,
		},
		FPULat:  fpu.DefaultLatencies(),
		Bus:     bus.Config{TransferCycles: 4, Cores: 4},
		DRAM:    mem.DefaultConfig(),
		RNGKind: rng.KindXoroshiro,
	}
}

// DET returns the deterministic baseline platform configuration.
func DET() Config {
	c := baseConfig("DET")
	c.IL1.Placement = cache.PlacementModulo
	c.IL1.Replacement = cache.ReplaceLRU
	c.DL1.Placement = cache.PlacementModulo
	c.DL1.Replacement = cache.ReplaceLRU
	c.ITLB.Replacement = tlb.ReplaceLRU
	c.DTLB.Replacement = tlb.ReplaceLRU
	c.FPUMode = fpu.ModeOperation
	return c
}

// RAND returns the MBPTA-compliant time-randomized platform
// configuration.
func RAND() Config {
	c := baseConfig("RAND")
	c.IL1.Placement = cache.PlacementRandomModulo
	c.IL1.Replacement = cache.ReplaceRandom
	c.DL1.Placement = cache.PlacementRandomModulo
	c.DL1.Replacement = cache.ReplaceRandom
	c.ITLB.Replacement = tlb.ReplaceRandom
	c.DTLB.Replacement = tlb.ReplaceRandom
	c.FPUMode = fpu.ModeAnalysis
	return c
}

// Platform is one instantiated board. Only core 0 executes the workload
// (as in the case study); the other cores contribute interference when
// configured. Not safe for concurrent use — campaigns instantiate one
// Platform per worker.
type Platform struct {
	cfg   Config
	core  *cpu.Core
	bus   *bus.Bus
	dram  *mem.Controller
	il1   *cache.Cache
	dl1   *cache.Cache
	itlb  *tlb.TLB
	dtlb  *tlb.TLB
	fpu   *fpu.FPU
	rsrc  *rng.Xoroshiro128 // hardware randomness (replacement policies)
	seedr *rng.SplitMix64   // derives per-resource seeds from the run seed
	icx   *interferingBus

	// Cumulative run-kind tallies for the telemetry harvest (see
	// BoardStats): how many measurements went through the trace-replay
	// fast path versus full interpretation.
	replayRuns    uint64
	interpretRuns uint64

	// Machine reuse: the last machine a Reloader workload prepared, so
	// the steady-state campaign loop re-initializes it in place instead
	// of allocating a fresh memory image every run.
	lastW Workload
	lastM *isa.Machine

	// Decode-once trace replay (see TraceStable): the event stream
	// recorded on the first run of a trace-stable workload, replayed
	// through the timing model on subsequent runs.
	replayOff bool
	paranoid  bool
	trace     []isa.Event
	traceW    Workload
	tracePath string
}

// New instantiates a platform from cfg.
func New(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{cfg: cfg}
	p.rsrc = rng.NewXoroshiro128(1)
	p.seedr = rng.NewSplitMix64(1)
	var err error
	if p.il1, err = cache.New(cfg.IL1, p.rsrc); err != nil {
		return nil, err
	}
	if p.dl1, err = cache.New(cfg.DL1, p.rsrc); err != nil {
		return nil, err
	}
	if p.itlb, err = tlb.New(cfg.ITLB, p.rsrc); err != nil {
		return nil, err
	}
	if p.dtlb, err = tlb.New(cfg.DTLB, p.rsrc); err != nil {
		return nil, err
	}
	f, err := fpu.New(cfg.FPULat, cfg.FPUMode)
	if err != nil {
		return nil, err
	}
	p.fpu = f
	if p.bus, err = bus.New(cfg.Bus); err != nil {
		return nil, err
	}
	if p.dram, err = mem.New(cfg.DRAM); err != nil {
		return nil, err
	}
	var ic cpu.Interconnect = cpu.BusMem{Bus: p.bus, Mem: p.dram}
	if cfg.Interference != nil {
		p.icx = newInterferingBus(p.bus, p.dram, *cfg.Interference)
		ic = p.icx
	}
	if p.core, err = cpu.NewCore(0, cfg.CoreParams, p.il1, p.dl1, p.itlb, p.dtlb, f, ic); err != nil {
		return nil, err
	}
	return p, nil
}

// Config returns the platform configuration.
func (p *Platform) Config() Config { return p.cfg }

// Core returns the measured core (core 0).
func (p *Platform) Core() *cpu.Core { return p.core }

// PrepareRun applies the paper's per-run protocol: flush caches and
// TLBs, reset the board, and install a fresh seed derived from runSeed
// for every randomized resource.
func (p *Platform) PrepareRun(runSeed uint64) {
	p.core.Reset()
	p.core.FlushAll()
	p.bus.Reset()
	p.dram.Reset()
	p.seedr.Seed(runSeed)
	p.il1.Reseed(p.seedr.Uint64())
	p.dl1.Reseed(p.seedr.Uint64())
	p.rsrc.Seed(p.seedr.Uint64())
	if p.icx != nil {
		p.icx.reset(p.seedr.Uint64())
	}
}

// RunResult is the outcome of one measurement run.
type RunResult struct {
	Cycles       uint64
	Instructions uint64
	Path         string // workload path identifier ("" if single-path)
	// Outcome is empty for a clean measurement. A fault-injection layer
	// (see internal/faults) sets it to the run's classification
	// ("masked", "timing-perturbed", "wrong-output", "hung"); those
	// outcomes quarantine the run from the timing analysis —
	// CampaignResult.Times and TimesByPath skip it. Mitigated outcomes
	// ("corrected", "scrubbed", "voted") are the exception: the run was
	// recovered by a mitigation layer and stays in the analyzed series,
	// its recovery overhead included in Cycles.
	Outcome string
	// Faults counts the upsets that occurred in this run (0 for a clean
	// run), whether applied or absorbed by a mitigation.
	Faults int
}

// MitigatedOutcome reports whether o marks a run recovered by a
// fault-mitigation layer (ECC correction, array scrubbing, lockstep
// vote). Mitigated runs carry a non-empty outcome for reporting but
// stay in the measurement series — their overhead is the signal the
// timing analysis must see. The set matches the faults package's
// mitigated outcome constants (enforced by test there; platform sits
// below faults in the import graph, so the strings are spelled here).
func MitigatedOutcome(o string) bool {
	switch o {
	case "corrected", "scrubbed", "voted":
		return true
	}
	return false
}

// Quarantined reports whether the run must be excluded from the
// measurement series (a fault-injection layer classified it and no
// mitigation recovered it).
func (r RunResult) Quarantined() bool { return r.Outcome != "" && !MitigatedOutcome(r.Outcome) }

// Workload is a program under analysis. Prepare must return a fresh
// machine for run index run ("reload the executable": new memory image,
// per-run input vector). PathOf classifies the executed path after the
// run for per-path analysis; return "" for single-path programs.
//
// Workload values used with a Platform should be comparable (structs of
// scalars or pointers): the platform compares them to decide whether a
// cached machine or recorded trace belongs to the workload at hand.
type Workload interface {
	Name() string
	Prepare(run int) (*isa.Machine, error)
	PathOf(m *isa.Machine) string
}

// Reloader is an optional Workload extension: a workload that can
// re-initialize a previously prepared machine in place, with observable
// state identical to a fresh Prepare. The platform then reuses one
// machine across the campaign's runs, keeping the steady-state run loop
// allocation-free. Workloads whose Prepare is cheap or that cannot
// guarantee in-place equivalence simply do not implement it.
type Reloader interface {
	Reload(m *isa.Machine, run int) error
}

// TraceStable is an optional Workload extension declaring whether the
// workload's retired-instruction event stream — PCs, classes, data
// addresses, FPU operands and branch outcomes — is identical for every
// run index. For such workloads the platform records the stream once
// (decode-once) and replays it through the timing model on subsequent
// runs, skipping architectural re-execution entirely; the per-run
// timing randomness (placement, replacement, FPU mode) still applies,
// so the measured cycles are bit-identical to full execution.
//
// Declare true only when control flow, memory addressing and FDIV/FSQRT
// operand values are all input-independent (e.g. a fixed-size matrix
// multiply). Workloads with data-dependent control flow (TVCA's clamp
// and saturation paths, sorting, table-driven CRC) must not implement
// this, and fall back to full execution.
type TraceStable interface {
	TraceStable() bool
}

// Run performs one protocol-compliant measurement of w.
func (p *Platform) Run(w Workload, run int, runSeed uint64) (RunResult, error) {
	return p.RunCtx(context.Background(), w, run, runSeed)
}

// RunCtx is Run with cooperative cancellation: the guest machine polls
// ctx between instruction bursts and aborts promptly once it is
// canceled (e.g. by a per-run timeout). The poll does not interact with
// the timing model, so for a context that never fires the measured
// cycles are bit-identical to Run.
func (p *Platform) RunCtx(ctx context.Context, w Workload, run int, runSeed uint64) (RunResult, error) {
	if p.trace != nil && !p.replayOff && w == p.traceW {
		return p.runReplay(ctx, w, run, runSeed)
	}
	m, err := p.machineFor(w, run)
	if err != nil {
		return RunResult{}, fmt.Errorf("platform %s: prepare run %d: %w", p.cfg.Name, run, err)
	}
	m.Cancel = nil // a reused machine may carry a previous run's closure
	if ctx != nil && ctx.Done() != nil {
		m.Cancel = func() bool { return ctx.Err() != nil }
	}
	p.PrepareRun(runSeed)
	var cycles uint64
	if ts, ok := w.(TraceStable); ok && ts.TraceStable() && !p.replayOff {
		cycles, err = p.recordTrace(w, m)
	} else {
		cycles, err = p.core.RunProgram(m)
	}
	if err != nil {
		return RunResult{}, fmt.Errorf("platform %s: run %d: %w", p.cfg.Name, run, err)
	}
	p.interpretRuns++
	return RunResult{
		Cycles:       cycles,
		Instructions: p.core.Stats().Instructions,
		Path:         w.PathOf(m),
	}, nil
}

// machineFor returns the machine for one run: a Reloader workload's
// cached machine re-initialized in place, or a fresh Prepare.
func (p *Platform) machineFor(w Workload, run int) (*isa.Machine, error) {
	if r, ok := w.(Reloader); ok && p.lastM != nil && w == p.lastW {
		if err := r.Reload(p.lastM, run); err != nil {
			return nil, err
		}
		return p.lastM, nil
	}
	m, err := w.Prepare(run)
	if err != nil {
		return nil, err
	}
	if _, ok := w.(Reloader); ok {
		p.lastW, p.lastM = w, m
	}
	return m, nil
}

// recordSink forwards every event to the timing core and captures it
// for later replay. The recording run's timing is untouched: the core
// consumes exactly the stream it would have consumed.
type recordSink struct {
	core *cpu.Core
	buf  []isa.Event
}

func (r *recordSink) Consume(ev isa.Event) {
	r.core.Consume(ev)
	r.buf = append(r.buf, ev)
}

// recordTrace runs m fully while capturing its event stream, then
// stores the trace (and the run's path classification, which for a
// trace-stable workload is the same every run) for replay.
func (p *Platform) recordTrace(w Workload, m *isa.Machine) (uint64, error) {
	rs := recordSink{core: p.core, buf: make([]isa.Event, 0, 1<<16)}
	start := p.core.Cycle()
	if _, err := m.RunSink(&rs); err != nil {
		return 0, err
	}
	p.trace, p.traceW, p.tracePath = rs.buf, w, w.PathOf(m)
	return p.core.Cycle() - start, nil
}

// runReplay performs one measurement by replaying the recorded event
// stream through the timing model: the per-run protocol (flush, reset,
// reseed) still applies, so placement/replacement/FPU randomness is
// exactly as in full execution, and the measured cycles are
// bit-identical. In paranoia mode every replayed run is cross-checked
// against a full execution with the same seed.
func (p *Platform) runReplay(ctx context.Context, w Workload, run int, runSeed uint64) (RunResult, error) {
	p.PrepareRun(runSeed)
	poll := ctx != nil && ctx.Done() != nil
	for i := range p.trace {
		if poll && i&1023 == 0 && ctx.Err() != nil {
			return RunResult{}, fmt.Errorf("platform %s: replay run %d: %w",
				p.cfg.Name, run, isa.ErrCancelled)
		}
		p.core.Consume(p.trace[i])
	}
	res := RunResult{
		Cycles:       p.core.Cycle(),
		Instructions: p.core.Stats().Instructions,
		Path:         p.tracePath,
	}
	if p.paranoid {
		if err := p.crossCheck(ctx, w, run, runSeed, res); err != nil {
			return RunResult{}, err
		}
	}
	p.replayRuns++
	return res, nil
}

// crossCheck re-executes the run fully (fresh machine, same seed) and
// compares cycles, instruction count and path against the replay.
func (p *Platform) crossCheck(ctx context.Context, w Workload, run int, runSeed uint64, got RunResult) error {
	m, err := w.Prepare(run)
	if err != nil {
		return fmt.Errorf("platform %s: paranoia prepare run %d: %w", p.cfg.Name, run, err)
	}
	if ctx != nil && ctx.Done() != nil {
		m.Cancel = func() bool { return ctx.Err() != nil }
	}
	p.PrepareRun(runSeed)
	cycles, err := p.core.RunProgram(m)
	if err != nil {
		return fmt.Errorf("platform %s: paranoia run %d: %w", p.cfg.Name, run, err)
	}
	want := RunResult{
		Cycles:       cycles,
		Instructions: p.core.Stats().Instructions,
		Path:         w.PathOf(m),
	}
	if got != want {
		return fmt.Errorf("platform %s: replay diverged from full execution on run %d: replay=%+v full=%+v",
			p.cfg.Name, run, got, want)
	}
	return nil
}

// SetReplay enables or disables the decode-once trace-replay fast path
// (enabled by default). Disabling also drops any recorded trace.
func (p *Platform) SetReplay(on bool) {
	p.replayOff = !on
	if !on {
		p.trace, p.traceW, p.tracePath = nil, nil, ""
	}
}

// SetReplayParanoia toggles cross-checking of every replayed run
// against a full execution with the same seed (testing aid; doubles the
// cost of replayed runs).
func (p *Platform) SetReplayParanoia(on bool) { p.paranoid = on }

// interferingBus wraps the shared bus, injecting co-runner transactions
// with timestamps interleaved against the measured core's requests.
// It holds the bus and DRAM controller directly (not through a BusMem)
// because it requests on behalf of several synthetic cores, while the
// cpu.Interconnect contract serves exactly one.
type interferingBus struct {
	bus  *bus.Bus
	mem  *mem.Controller
	cfg  InterferenceConfig
	next []uint64 // next injection time per interfering core
	rnd  *rng.Xoroshiro128
}

func newInterferingBus(b *bus.Bus, d *mem.Controller, cfg InterferenceConfig) *interferingBus {
	return &interferingBus{
		bus:  b,
		mem:  d,
		cfg:  cfg,
		next: make([]uint64, cfg.Cores),
		rnd:  rng.NewXoroshiro128(0),
	}
}

func (ib *interferingBus) reset(seed uint64) {
	ib.rnd.Seed(seed)
	for i := range ib.next {
		if ib.cfg.Randomize {
			ib.next[i] = uint64(rng.Intn(ib.rnd, int(ib.cfg.PeriodCycles))) + 1
		} else {
			// Deterministic phase: evenly staggered.
			ib.next[i] = (uint64(i) + 1) * ib.cfg.PeriodCycles / uint64(len(ib.next)+1)
		}
	}
}

// Request injects all due interference traffic before granting the
// measured core's request, preserving global FCFS order.
func (ib *interferingBus) Request(t uint64, kind bus.Kind, addr uint64) (uint64, uint64) {
	for i := range ib.next {
		for ib.next[i] <= t {
			// Synthetic co-runner fill: the address only matters for the
			// open-page DRAM ablation; spread it across rows.
			ib.bus.Request(i+1, ib.next[i], bus.KindLineFill)
			ib.mem.Latency(ib.next[i] << 6)
			if ib.cfg.Randomize {
				ib.next[i] += uint64(rng.Intn(ib.rnd, int(2*ib.cfg.PeriodCycles))) + 1
			} else {
				ib.next[i] += ib.cfg.PeriodCycles
			}
		}
	}
	start := ib.bus.Request(0, t, kind)
	return start, ib.mem.Latency(addr)
}

// TransferCycles forwards the bus occupancy.
func (ib *interferingBus) TransferCycles() uint64 { return ib.bus.TransferCycles() }
