package platform

import (
	"context"
	"fmt"
	"time"
)

// Board is one simulated machine a worker executes measurement runs
// on: a single-core Platform or a co-simulated Multicore. The contract
// is the protocol contract of (*Platform).RunCtx — all randomness
// derives from seed, results are a pure function of (workload, run,
// seed), and execution aborts promptly once ctx is canceled.
type Board interface {
	ExecuteRun(ctx context.Context, w Workload, run int, seed uint64) (RunResult, error)
}

// ExecuteRun implements Board: one protocol-compliant measurement.
func (p *Platform) ExecuteRun(ctx context.Context, w Workload, run int, seed uint64) (RunResult, error) {
	return p.RunCtx(ctx, w, run, seed)
}

// ExecuteRun implements Board on the co-simulated multicore platform:
// the measured workload runs on core 0, the co-runners loop on the
// remaining cores. Co-simulation commits to a whole run once started
// (the arbiter has no preemption point), so ctx is honored at the run
// boundary only.
func (mc *Multicore) ExecuteRun(ctx context.Context, w Workload, run int, seed uint64) (RunResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return RunResult{}, err
		}
	}
	r, err := mc.Run(w, run, seed)
	if err != nil {
		return RunResult{}, err
	}
	return r.Measured, nil
}

// ExecPolicy bundles the per-run resilience knobs shared by the
// streaming engine and the distributed campaign fabric: an optional
// substitute executor (the fault-injection layer), a per-attempt
// wall-clock bound, and a bounded seed-preserving retry policy.
type ExecPolicy struct {
	// Runner substitutes the per-run executor (nil = Board.ExecuteRun).
	// A non-nil Runner requires single-core *Platform boards.
	Runner RunFunc
	// Cached, when non-nil, is consulted before any execution: a hit
	// returns the memoized result of run and skips the board, the
	// runner, timeouts and retries entirely. The platform protocol makes
	// results a pure function of (workload, run, seed), so replaying a
	// recorded result is indistinguishable from re-simulating it — this
	// is the content-addressed run cache's entry point into both the
	// streaming engine and the campaign fabric.
	Cached func(run int) (RunResult, bool)
	// RunTimeout bounds each attempt; an attempt exceeding it fails with
	// an error matching ErrRunTimeout. Zero means no per-run deadline.
	RunTimeout time.Duration
	// Retry re-executes failed attempts under the original seed.
	Retry RetryPolicy
	// counters receives retry/timeout tallies (nil-safe).
	counters retryCounters
}

// retryCounters abstracts the telemetry sink of the retry loop so the
// engine can pass its registry without ExecPolicy importing it.
type retryCounters interface {
	incTimeout()
	incRetry()
}

// ExecuteRun executes one measurement run on board under pol: run's
// seed is DeriveRunSeed(baseSeed, run), each attempt is bounded by
// pol.RunTimeout, and failing attempts retry per pol.Retry with the
// same seed — a retried run yields exactly the result a first-attempt
// success would have. This is the per-run primitive the streaming
// engine's workers and the fabric's executors share.
func ExecuteRun(ctx context.Context, board Board, w Workload, baseSeed uint64, run int, pol ExecPolicy) (RunResult, error) {
	if pol.Cached != nil {
		if r, ok := pol.Cached(run); ok {
			return r, nil
		}
	}
	seed := DeriveRunSeed(baseSeed, run)
	exec := func(ctx context.Context) (RunResult, error) {
		if pol.Runner != nil {
			p, ok := board.(*Platform)
			if !ok {
				return RunResult{}, fmt.Errorf("platform: custom runners (fault injection) require single-core boards, got %T", board)
			}
			return pol.Runner(ctx, p, w, run, seed)
		}
		return board.ExecuteRun(ctx, w, run, seed)
	}

	attempts := pol.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 && pol.Retry.Backoff > 0 {
			// Exponential backoff: Backoff, 2*Backoff, 4*Backoff, ...
			d := pol.Retry.Backoff << (a - 1)
			if d <= 0 || d > time.Minute {
				d = time.Minute
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return RunResult{}, ctx.Err()
			case <-t.C:
			}
		}
		attemptCtx, cancelAttempt := ctx, context.CancelFunc(nil)
		if pol.RunTimeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeout(ctx, pol.RunTimeout)
		}
		r, err := exec(attemptCtx)
		timedOut := cancelAttempt != nil && attemptCtx.Err() == context.DeadlineExceeded
		if cancelAttempt != nil {
			cancelAttempt()
		}
		if err == nil {
			return r, nil
		}
		if ctx.Err() != nil {
			// The campaign itself was canceled; don't spin on retries.
			return RunResult{}, err
		}
		if timedOut {
			err = fmt.Errorf("%w: run %d exceeded %s: %v", ErrRunTimeout, run, pol.RunTimeout, err)
			if pol.counters != nil {
				pol.counters.incTimeout()
			}
		}
		if a+1 < attempts && pol.counters != nil {
			pol.counters.incRetry()
		}
		lastErr = err
	}
	if attempts > 1 {
		return RunResult{}, fmt.Errorf("platform: run %d failed after %d attempts: %w", run, attempts, lastErr)
	}
	return RunResult{}, lastErr
}

// SafeExecuteRun is ExecuteRun with worker panics converted into an
// error matching ErrWorkerPanic, so a supervision layer can handle the
// failure at the run boundary instead of crashing the process.
func SafeExecuteRun(ctx context.Context, board Board, w Workload, baseSeed uint64, run int, pol ExecPolicy) (r RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, err = RunResult{}, fmt.Errorf("%w: run %d: %v", ErrWorkerPanic, run, p)
		}
	}()
	return ExecuteRun(ctx, board, w, baseSeed, run, pol)
}
