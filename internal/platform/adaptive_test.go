package platform

import (
	"testing"

	"repro/internal/tvca"
)

func TestAdaptiveCampaignConverges(t *testing.T) {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AdaptiveCampaign(RAND(), app, AdaptiveOptions{
		MinRuns: 300, MaxRuns: 2000, Batch: 100, BaseSeed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence within %d runs (distances %v)",
			res.StopRuns, res.Distances)
	}
	if res.StopRuns < 300 || res.StopRuns > 2000 {
		t.Errorf("stop at %d runs", res.StopRuns)
	}
	if len(res.Campaign.Results) != res.StopRuns {
		t.Errorf("campaign has %d results, stop %d", len(res.Campaign.Results), res.StopRuns)
	}
	if len(res.Distances) == 0 {
		t.Error("no convergence trace")
	}
}

func TestAdaptiveCampaignReproducible(t *testing.T) {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := AdaptiveOptions{MinRuns: 300, MaxRuns: 1200, Batch: 150, BaseSeed: 4}
	a, err := AdaptiveCampaign(RAND(), app, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdaptiveCampaign(RAND(), app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.StopRuns != b.StopRuns || a.Converged != b.Converged {
		t.Fatalf("adaptive campaign not reproducible: %d/%v vs %d/%v",
			a.StopRuns, a.Converged, b.StopRuns, b.Converged)
	}
	for i := range a.Campaign.Results {
		if a.Campaign.Results[i] != b.Campaign.Results[i] {
			t.Fatalf("run %d differs", i)
		}
	}
}

func TestAdaptiveCampaignDegenerateWorkload(t *testing.T) {
	// A constant-time workload cannot be fitted; the campaign returns
	// un-converged with the collected runs instead of erroring.
	res, err := AdaptiveCampaign(DET(), trivialWorkload{}, AdaptiveOptions{
		MinRuns: 300, MaxRuns: 400, Batch: 300, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("constant workload reported converged")
	}
	if res.StopRuns != 300 {
		t.Errorf("stop at %d, want 300 (first refit attempt)", res.StopRuns)
	}
}

func TestAdaptiveCampaignValidation(t *testing.T) {
	app, err := tvca.New(tvca.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AdaptiveCampaign(RAND(), app, AdaptiveOptions{MinRuns: 100}); err == nil {
		t.Error("MinRuns below fit minimum accepted")
	}
	if _, err := AdaptiveCampaign(RAND(), app, AdaptiveOptions{MinRuns: 300, MaxRuns: 200}); err == nil {
		t.Error("MaxRuns < MinRuns accepted")
	}
}
