// Telemetry harvest for the campaign engine. The simulator's hot loop
// carries no telemetry calls: the substrate models keep plain struct
// counters (cache/TLB/FPU stats, run-kind tallies), and this file
// collects them into a telemetry.Registry at batch barriers — the one
// point in a streaming campaign where a single goroutine observes a
// complete, ordered prefix of the run series.
//
// Determinism: every instrument harvested from per-run state (cache,
// TLB, FPU, cycle, instruction and outcome counters; run/batch events)
// is reproducible for a fixed BaseSeed regardless of Parallel, because
// per-run deltas depend only on (workload, run index, seed) and sums
// commute. The exceptions, excluded from the parallelism-invariance
// test and documented in DESIGN.md §11, are the wall-clock instruments
// (campaign_runs_per_sec, campaign_batch_seconds), the retry/timeout
// tallies, and sim_replay_runs_total/sim_interpret_runs_total for
// trace-stable workloads (each worker board records its own trace on
// its first run).
package platform

import (
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/fpu"
	"repro/internal/telemetry"
	"repro/internal/tlb"
)

// BoardStats is the cumulative per-board counter snapshot the
// telemetry harvest diffs between batches.
type BoardStats struct {
	IL1, DL1      cache.Stats
	ITLB, DTLB    tlb.Stats
	FPU           fpu.Stats
	ReplayRuns    uint64
	InterpretRuns uint64
}

// BoardStats returns the platform's cumulative substrate counters.
func (p *Platform) BoardStats() BoardStats {
	return BoardStats{
		IL1:           p.il1.Stats(),
		DL1:           p.dl1.Stats(),
		ITLB:          p.itlb.Stats(),
		DTLB:          p.dtlb.Stats(),
		FPU:           p.fpu.Stats(),
		ReplayRuns:    p.replayRuns,
		InterpretRuns: p.interpretRuns,
	}
}

// Sub returns the counter delta b - prev (prev must be an earlier
// snapshot of the same board).
func (b BoardStats) Sub(prev BoardStats) BoardStats {
	return BoardStats{
		IL1:           subCache(b.IL1, prev.IL1),
		DL1:           subCache(b.DL1, prev.DL1),
		ITLB:          subTLB(b.ITLB, prev.ITLB),
		DTLB:          subTLB(b.DTLB, prev.DTLB),
		FPU:           fpu.Stats{DivWorstCase: b.FPU.DivWorstCase - prev.FPU.DivWorstCase, SqrtWorstCase: b.FPU.SqrtWorstCase - prev.FPU.SqrtWorstCase},
		ReplayRuns:    b.ReplayRuns - prev.ReplayRuns,
		InterpretRuns: b.InterpretRuns - prev.InterpretRuns,
	}
}

func subCache(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:        a.Hits - b.Hits,
		Misses:      a.Misses - b.Misses,
		Evictions:   a.Evictions - b.Evictions,
		WriteHits:   a.WriteHits - b.WriteHits,
		WriteMisses: a.WriteMisses - b.WriteMisses,
		MRUHits:     a.MRUHits - b.MRUHits,
	}
}

func subTLB(a, b tlb.Stats) tlb.Stats {
	return tlb.Stats{Hits: a.Hits - b.Hits, Misses: a.Misses - b.Misses, MRUHits: a.MRUHits - b.MRUHits}
}

// streamTele aggregates one campaign's telemetry: pre-resolved
// instruments plus the per-board snapshots the barrier harvest diffs
// against. All methods run on the campaign goroutine.
//
// Every instrument the barrier harvest touches is resolved once at
// campaign start — the per-batch path does no registry lookups and no
// name construction, so a telemetry-enabled campaign allocates a
// near-constant amount per batch (one run-event field slab, one batch
// event) instead of per counter update.
type streamTele struct {
	reg     *telemetry.Registry
	prev    []BoardStats
	seen    []Board // which board produced prev[i]
	started time.Time

	runs, clean, quarantined, faults, batches *telemetry.Counter
	cycles, instructions                      *telemetry.Counter
	batchSec                                  *telemetry.Histogram
	runsPerSec, ipc                           *telemetry.Gauge

	il1, dl1          cacheInstruments
	itlb, dtlb        tlbInstruments
	fpuDiv, fpuSqrt   *telemetry.Counter
	replay, interpret *telemetry.Counter
}

// cacheInstruments is one cache level's pre-resolved harvest set.
type cacheInstruments struct {
	hits, misses, evictions     *telemetry.Counter
	writeHits, writeMisses, mru *telemetry.Counter
	hitRatio, mruRatio          *telemetry.Gauge
}

// tlbInstruments is one TLB's pre-resolved harvest set.
type tlbInstruments struct {
	hits, misses, mru  *telemetry.Counter
	hitRatio, mruRatio *telemetry.Gauge
}

// Instrument names are spelled out as literals (not built with string
// concatenation) so resolving them allocates nothing.
func il1Instruments(reg *telemetry.Registry) cacheInstruments {
	return cacheInstruments{
		hits:        reg.Counter("sim_il1_hits_total"),
		misses:      reg.Counter("sim_il1_misses_total"),
		evictions:   reg.Counter("sim_il1_evictions_total"),
		writeHits:   reg.Counter("sim_il1_write_hits_total"),
		writeMisses: reg.Counter("sim_il1_write_misses_total"),
		mru:         reg.Counter("sim_il1_mru_hits_total"),
		hitRatio:    reg.Gauge("sim_il1_hit_ratio"),
		mruRatio:    reg.Gauge("sim_il1_mru_hit_ratio"),
	}
}

func dl1Instruments(reg *telemetry.Registry) cacheInstruments {
	return cacheInstruments{
		hits:        reg.Counter("sim_dl1_hits_total"),
		misses:      reg.Counter("sim_dl1_misses_total"),
		evictions:   reg.Counter("sim_dl1_evictions_total"),
		writeHits:   reg.Counter("sim_dl1_write_hits_total"),
		writeMisses: reg.Counter("sim_dl1_write_misses_total"),
		mru:         reg.Counter("sim_dl1_mru_hits_total"),
		hitRatio:    reg.Gauge("sim_dl1_hit_ratio"),
		mruRatio:    reg.Gauge("sim_dl1_mru_hit_ratio"),
	}
}

func itlbInstruments(reg *telemetry.Registry) tlbInstruments {
	return tlbInstruments{
		hits:     reg.Counter("sim_itlb_hits_total"),
		misses:   reg.Counter("sim_itlb_misses_total"),
		mru:      reg.Counter("sim_itlb_mru_hits_total"),
		hitRatio: reg.Gauge("sim_itlb_hit_ratio"),
		mruRatio: reg.Gauge("sim_itlb_mru_hit_ratio"),
	}
}

func dtlbInstruments(reg *telemetry.Registry) tlbInstruments {
	return tlbInstruments{
		hits:     reg.Counter("sim_dtlb_hits_total"),
		misses:   reg.Counter("sim_dtlb_misses_total"),
		mru:      reg.Counter("sim_dtlb_mru_hits_total"),
		hitRatio: reg.Gauge("sim_dtlb_hit_ratio"),
		mruRatio: reg.Gauge("sim_dtlb_mru_hit_ratio"),
	}
}

// batchSecondsBounds spans sub-millisecond micro-batches to multi-
// minute fault campaigns.
var batchSecondsBounds = []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 60, 300}

// boardStatser is the optional Board extension the substrate harvest
// uses. Both Platform and the co-simulated Multicore implement it —
// Multicore boards reuse their cores across runs (see ensureBoard), so
// their counters accumulate exactly like a single-core platform's.
type boardStatser interface {
	BoardStats() BoardStats
}

// BoardStats returns the cumulative substrate counters of the measured
// core (core 0) — the core whose timing the campaign analyzes; the
// co-runner cores exist to generate contention and are not reported.
// Harvested at batch barriers like Platform's, when no run is in
// flight on the board.
func (mc *Multicore) BoardStats() BoardStats {
	if !mc.built {
		return BoardStats{}
	}
	c0 := mc.cores[0]
	return BoardStats{
		IL1:           c0.IL1.Stats(),
		DL1:           c0.DL1.Stats(),
		ITLB:          c0.ITLB.Stats(),
		DTLB:          c0.DTLB.Stats(),
		FPU:           c0.FPU.Stats(),
		ReplayRuns:    mc.replayRuns,
		InterpretRuns: mc.interpretRuns,
	}
}

func newStreamTele(reg *telemetry.Registry, boards []Board, o StreamOptions, platformName, workload string) *streamTele {
	t := &streamTele{
		reg:          reg,
		prev:         make([]BoardStats, len(boards)),
		seen:         make([]Board, len(boards)),
		started:      time.Now(),
		runs:         reg.Counter("campaign_runs_total"),
		clean:        reg.Counter("campaign_clean_runs_total"),
		quarantined:  reg.Counter("campaign_quarantined_total"),
		faults:       reg.Counter("campaign_faults_injected_total"),
		batches:      reg.Counter("campaign_batches_total"),
		cycles:       reg.Counter("sim_cycles_total"),
		instructions: reg.Counter("sim_instructions_total"),
		batchSec:     reg.Histogram("campaign_batch_seconds", batchSecondsBounds),
		runsPerSec:   reg.Gauge("campaign_runs_per_sec"),
		ipc:          reg.Gauge("sim_ipc"),
		il1:          il1Instruments(reg),
		dl1:          dl1Instruments(reg),
		itlb:         itlbInstruments(reg),
		dtlb:         dtlbInstruments(reg),
		fpuDiv:       reg.Counter("sim_fpu_div_worstcase_total"),
		fpuSqrt:      reg.Counter("sim_fpu_sqrt_worstcase_total"),
		replay:       reg.Counter("sim_replay_runs_total"),
		interpret:    reg.Counter("sim_interpret_runs_total"),
	}
	for i, b := range boards {
		if s, ok := b.(boardStatser); ok {
			t.prev[i] = s.BoardStats()
		}
		t.seen[i] = b
	}
	reg.Emit("campaign_start", -1,
		telemetry.Str("platform", platformName),
		telemetry.Str("workload", workload),
		telemetry.Num("max_runs", float64(o.MaxRuns)),
		telemetry.Num("batch_size", float64(o.BatchSize)),
		telemetry.Str("base_seed", strconv.FormatUint(o.BaseSeed, 10)),
	)
	return t
}

// emitBatchResults publishes everything about a batch that is derivable
// from its results alone — outcome counters, per-run events (in run
// order), campaign counters, and the batch event. It is shared between
// the live barrier harvest and the resume replay, which re-emits
// journaled batches so the event stream of a resumed campaign is
// byte-identical to an uninterrupted one.
func emitBatchResults(reg *telemetry.Registry, b Batch) {
	var cycles, instructions, faults uint64
	var quarantined int
	for _, r := range b.Results {
		cycles += r.Cycles
		instructions += r.Instructions
		faults += uint64(r.Faults)
		if r.Quarantined() {
			quarantined++
			reg.Counter("campaign_outcome_" + telemetry.SanitizeName(r.Outcome) + "_total").Inc()
		}
	}
	// One field slab per batch, sub-sliced per run: sized for the worst
	// case (3 fields per run, 2 more per quarantined run) so appends
	// never reallocate and earlier sub-slices stay valid. The slab is
	// fresh each batch because sinks (RingSink) may retain Event.Fields
	// after Emit returns — reuse across batches would corrupt retained
	// events.
	slab := make([]telemetry.Field, 0, 3*len(b.Results)+2*quarantined)
	for i, r := range b.Results {
		start := len(slab)
		slab = append(slab,
			telemetry.Num("cycles", float64(r.Cycles)),
			telemetry.Num("instructions", float64(r.Instructions)))
		if r.Path != "" {
			slab = append(slab, telemetry.Str("path", r.Path))
		}
		if r.Quarantined() {
			slab = append(slab, telemetry.Str("outcome", r.Outcome),
				telemetry.Num("faults", float64(r.Faults)))
		}
		reg.Emit("run", b.Start+i, slab[start:len(slab):len(slab)]...)
	}

	reg.Counter("campaign_runs_total").Add(uint64(len(b.Results)))
	reg.Counter("campaign_clean_runs_total").Add(uint64(len(b.Results) - quarantined))
	reg.Counter("campaign_quarantined_total").Add(uint64(quarantined))
	reg.Counter("campaign_faults_injected_total").Add(faults)
	reg.Counter("campaign_batches_total").Inc()
	reg.Counter("sim_cycles_total").Add(cycles)
	reg.Counter("sim_instructions_total").Add(instructions)

	reg.Emit("batch", -1,
		telemetry.Num("batch", float64(b.Index)),
		telemetry.Num("start", float64(b.Start)),
		telemetry.Num("runs", float64(len(b.Results))),
		telemetry.Num("cycles", float64(cycles)),
		telemetry.Num("quarantined", float64(quarantined)),
	)
}

// ReplayBatch re-emits a journaled batch's result-derived telemetry —
// the resume path's half of the event stream (the analysis events are
// replayed by the analyzer). Board-level substrate counters (cache,
// TLB, FPU) and the wall-clock instruments cannot be reconstructed from
// run records and are documented resume exclusions, like the existing
// parallelism exclusions of DESIGN.md §11.
func ReplayBatch(reg *telemetry.Registry, b Batch) {
	if reg == nil {
		return
	}
	emitBatchResults(reg, b)
}

// observeBatch folds one completed batch into the registry: result-
// derived counters and per-run events (in run order), then the summed
// substrate deltas of every worker board, then the derived gauges.
func (t *streamTele) observeBatch(b Batch, boards []Board, elapsed time.Duration) {
	emitBatchResults(t.reg, b)

	for i, board := range boards {
		s, ok := board.(boardStatser)
		if !ok {
			continue
		}
		cur := s.BoardStats()
		if t.seen[i] != board {
			// The board was replaced by a supervised restart: its
			// predecessor's unharvested work is gone, so restart the
			// delta baseline rather than underflowing the counters.
			t.seen[i] = board
			t.prev[i] = cur
			continue
		}
		delta := cur.Sub(t.prev[i])
		t.prev[i] = cur
		t.il1.add(delta.IL1)
		t.dl1.add(delta.DL1)
		t.itlb.add(delta.ITLB)
		t.dtlb.add(delta.DTLB)
		t.fpuDiv.Add(delta.FPU.DivWorstCase)
		t.fpuSqrt.Add(delta.FPU.SqrtWorstCase)
		t.replay.Add(delta.ReplayRuns)
		t.interpret.Add(delta.InterpretRuns)
	}
	t.il1.setRatios()
	t.dl1.setRatios()
	t.itlb.setRatios()
	t.dtlb.setRatios()

	if cyc := t.cycles.Value(); cyc > 0 {
		t.ipc.Set(float64(t.instructions.Value()) / float64(cyc))
	}
	t.batchSec.Observe(elapsed.Seconds())
	if wall := time.Since(t.started).Seconds(); wall > 0 {
		t.runsPerSec.Set(float64(t.runs.Value()) / wall)
	}
}

func (c cacheInstruments) add(s cache.Stats) {
	c.hits.Add(s.Hits)
	c.misses.Add(s.Misses)
	c.evictions.Add(s.Evictions)
	c.writeHits.Add(s.WriteHits)
	c.writeMisses.Add(s.WriteMisses)
	c.mru.Add(s.MRUHits)
}

// setRatios refreshes the level's derived hit-rate gauges from its
// cumulative counters.
func (c cacheInstruments) setRatios() {
	hits := c.hits.Value() + c.writeHits.Value()
	total := hits + c.misses.Value() + c.writeMisses.Value()
	if total > 0 {
		c.hitRatio.Set(float64(hits) / float64(total))
		c.mruRatio.Set(float64(c.mru.Value()) / float64(total))
	}
}

func (tl tlbInstruments) add(s tlb.Stats) {
	tl.hits.Add(s.Hits)
	tl.misses.Add(s.Misses)
	tl.mru.Add(s.MRUHits)
}

func (tl tlbInstruments) setRatios() {
	hits := tl.hits.Value()
	total := hits + tl.misses.Value()
	if total > 0 {
		tl.hitRatio.Set(float64(hits) / float64(total))
		tl.mruRatio.Set(float64(tl.mru.Value()) / float64(total))
	}
}

// finish emits the campaign_end event.
func (t *streamTele) finish(totalRuns int, stopped bool) {
	early := 0.0
	if stopped {
		early = 1
	}
	t.reg.Emit("campaign_end", -1,
		telemetry.Num("runs", float64(totalRuns)),
		telemetry.Num("stopped_early", early),
	)
}
