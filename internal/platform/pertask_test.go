package platform

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/tvca"
)

func TestValidateSpans(t *testing.T) {
	good := []isa.Span{
		{Name: "a", Start: 0x100, End: 0x200},
		{Name: "b", Start: 0x200, End: 0x300},
	}
	if err := ValidateSpans(good); err != nil {
		t.Fatal(err)
	}
	bad := [][]isa.Span{
		{},
		{{Name: "empty", Start: 0x100, End: 0x100}},
		{{Name: "a", Start: 0x100, End: 0x300}, {Name: "b", Start: 0x200, End: 0x400}},
	}
	for i, s := range bad {
		if err := ValidateSpans(s); err == nil {
			t.Errorf("bad spans %d accepted", i)
		}
	}
}

func TestTVCATaskSpansWellFormed(t *testing.T) {
	app := tinyTVCA(t)
	spans := app.TaskSpans()
	if err := ValidateSpans(spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("%d spans", len(spans))
	}
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
		if s.Start < app.Program().CodeBase {
			t.Errorf("span %q starts before code base", s.Name)
		}
	}
	for _, want := range []string{"sensor-acq", "actuator-x", "actuator-y"} {
		if !names[want] {
			t.Errorf("missing span %q", want)
		}
	}
}

func TestRunPerTaskAccounting(t *testing.T) {
	app := tinyTVCA(t) // 4 frames, 8 sensors, 8 taps
	p, err := New(RAND())
	if err != nil {
		t.Fatal(err)
	}
	res, jobs, err := p.RunPerTask(app, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Activation counts over 4 minor frames: sensor every frame (4),
	// actuator-x every 2nd (2), actuator-y every 4th (1).
	if n := len(jobs["sensor-acq"]); n != 4 {
		t.Errorf("sensor jobs = %d, want 4", n)
	}
	if n := len(jobs["actuator-x"]); n != 2 {
		t.Errorf("actuator-x jobs = %d, want 2", n)
	}
	if n := len(jobs["actuator-y"]); n != 1 {
		t.Errorf("actuator-y jobs = %d, want 1", n)
	}
	// Conservation: task cycles + dispatcher cycles = total cycles.
	var sum uint64
	for _, ts := range jobs {
		for _, c := range ts {
			sum += c
		}
	}
	if sum != res.Cycles {
		t.Errorf("attributed %d cycles, run took %d", sum, res.Cycles)
	}
	// Every job costs something.
	for task, ts := range jobs {
		for i, c := range ts {
			if c == 0 {
				t.Errorf("%s job %d has zero cycles", task, i)
			}
		}
	}
}

func TestRunPerTaskMatchesPlainRun(t *testing.T) {
	// Per-task attribution must not change the measured total.
	app := tinyTVCA(t)
	p1, _ := New(RAND())
	p2, _ := New(RAND())
	plain, err := p1.Run(app, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	withTasks, _, err := p2.RunPerTask(app, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != withTasks.Cycles || plain.Path != withTasks.Path {
		t.Errorf("plain %+v != per-task %+v", plain, withTasks)
	}
}

func TestPerTaskCampaign(t *testing.T) {
	app := tinyTVCA(t)
	byTask, err := PerTaskCampaign(RAND(), app, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 20 runs x activations per run.
	if n := len(byTask["sensor-acq"]); n != 20*4 {
		t.Errorf("sensor samples = %d, want 80", n)
	}
	if n := len(byTask["actuator-y"]); n != 20*1 {
		t.Errorf("actuator-y samples = %d, want 20", n)
	}
	if _, ok := byTask["(dispatcher)"]; ok {
		t.Error("dispatcher leaked into the campaign result")
	}
	if _, err := PerTaskCampaign(RAND(), app, 0, 0); err == nil {
		t.Error("zero runs accepted")
	}
}

// spanlessWorkload has no spans, to exercise validation.
type spanlessWorkload struct{ *tvca.App }

func (s spanlessWorkload) TaskSpans() []isa.Span { return nil }

func TestRunPerTaskRejectsBadSpans(t *testing.T) {
	app := tinyTVCA(t)
	p, _ := New(RAND())
	if _, _, err := p.RunPerTask(spanlessWorkload{app}, 0, 1); err == nil {
		t.Error("spanless workload accepted")
	}
}
