package platform

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/telemetry"
)

// panickyWorkload panics in Prepare the first `times` attempts of each
// run index listed in panicky — exercising the supervision path with a
// failure that later attempts recover from (or never do, for times<0).
type panickyWorkload struct {
	panicky  map[int]int // run -> remaining panics (-1 = always)
	mu       *sync.Mutex
	attempts *atomic.Int64
}

func newPanickyWorkload(runs map[int]int) *panickyWorkload {
	return &panickyWorkload{panicky: runs, mu: &sync.Mutex{}, attempts: &atomic.Int64{}}
}

func (p *panickyWorkload) Name() string { return "panicky" }
func (p *panickyWorkload) Prepare(run int) (*isa.Machine, error) {
	p.attempts.Add(1)
	p.mu.Lock()
	left, hit := p.panicky[run]
	if hit && left > 0 {
		p.panicky[run] = left - 1
	}
	p.mu.Unlock()
	if hit && left != 0 {
		panic("injected worker panic")
	}
	b := isa.NewBuilder("panicky", 0)
	b.Li(1, int32(run)).Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(prog, isa.NewMemory()), nil
}
func (p *panickyWorkload) PathOf(*isa.Machine) string { return "" }

// TestSupervisionRecoversPanickingWorker: a panic on the first attempt
// of two runs is absorbed by a worker restart; the re-queued runs keep
// their seeds, so the measured series is bit-identical to a campaign
// that never panicked.
func TestSupervisionRecoversPanickingWorker(t *testing.T) {
	const runs = 20
	opts := StreamOptions{MaxRuns: runs, BatchSize: 10, Parallel: 2, BaseSeed: 5,
		Supervise: SupervisionPolicy{Backoff: time.Microsecond}}

	clean := newPanickyWorkload(nil)
	ref, err := StreamCampaign(context.Background(), DET(), clean, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	flaky := newPanickyWorkload(map[int]int{3: 1, 11: 1})
	o := opts
	o.Telemetry = reg
	got, err := StreamCampaign(context.Background(), DET(), flaky, o, nil)
	if err != nil {
		t.Fatalf("supervised campaign failed: %v", err)
	}
	if len(got.Results) != runs {
		t.Fatalf("supervised campaign has %d runs, want %d", len(got.Results), runs)
	}
	for i := range ref.Results {
		if got.Results[i] != ref.Results[i] {
			t.Fatalf("run %d differs after supervised restart: %+v vs %+v", i, got.Results[i], ref.Results[i])
		}
	}
	if n := reg.Counter("worker_restarts_total").Value(); n != 2 {
		t.Errorf("worker_restarts_total = %d, want 2", n)
	}
	if v := reg.Snapshot()["campaign_degraded"]; v != 0 {
		t.Errorf("campaign_degraded = %v on a recovered campaign", v)
	}
}

// TestSupervisionDegrades: a worker that panics on every attempt must
// terminate the campaign with ErrDegraded and a valid partial sample —
// not hang and not crash the process.
func TestSupervisionDegrades(t *testing.T) {
	reg := telemetry.New()
	always := newPanickyWorkload(map[int]int{5: -1})
	res, err := StreamCampaign(context.Background(), DET(), always,
		StreamOptions{MaxRuns: 40, BatchSize: 10, Parallel: 2, BaseSeed: 5,
			Supervise: SupervisionPolicy{MaxRestarts: 3, Backoff: time.Microsecond},
			Telemetry: reg}, nil)
	if err == nil {
		t.Fatal("always-panicking campaign returned nil error")
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("errors.Is(err, ErrDegraded) = false: %v", err)
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Errorf("degraded error does not wrap the panic cause: %v", err)
	}
	if res == nil {
		t.Fatal("degraded campaign returned no partial result")
	}
	// The partial sample is the contiguous prefix before the doomed run.
	if len(res.Results) > 5 {
		t.Errorf("partial sample has %d runs; run 5 never succeeded", len(res.Results))
	}
	clean := newPanickyWorkload(nil)
	ref, _ := StreamCampaign(context.Background(), DET(), clean,
		StreamOptions{MaxRuns: 40, BatchSize: 10, Parallel: 2, BaseSeed: 5}, nil)
	for i := range res.Results {
		if res.Results[i] != ref.Results[i] {
			t.Errorf("partial run %d differs from the clean series", i)
		}
	}
	// Other workers draining the batch reset the consecutive counter, so
	// the total may exceed the budget; it must at least have been spent.
	if n := reg.Counter("worker_restarts_total").Value(); n < 3 {
		t.Errorf("worker_restarts_total = %d, want >= 3", n)
	}
	if v := reg.Snapshot()["campaign_degraded"]; v != 1 {
		t.Errorf("campaign_degraded = %v, want 1", v)
	}
}

// TestSupervisionDisabled: MaxRestarts < 0 turns a panic into an
// ordinary fatal campaign error.
func TestSupervisionDisabled(t *testing.T) {
	always := newPanickyWorkload(map[int]int{2: -1})
	_, err := StreamCampaign(context.Background(), DET(), always,
		StreamOptions{MaxRuns: 10, BatchSize: 10, Parallel: 2, BaseSeed: 5,
			Supervise: SupervisionPolicy{MaxRestarts: -1}}, nil)
	if err == nil {
		t.Fatal("panic with disabled supervision returned nil error")
	}
	if errors.Is(err, ErrDegraded) {
		t.Errorf("disabled supervision still degraded: %v", err)
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Errorf("error does not carry the panic: %v", err)
	}
}

// memJournal records the engine's journal protocol for inspection.
type memJournal struct {
	runs     []int
	seeds    []uint64
	results  []RunResult
	barriers []int // delivered run count at each Barrier
	flushes  int
	failLog  bool
}

func (j *memJournal) LogRun(run int, seed uint64, r RunResult) error {
	if j.failLog {
		return errors.New("journal log failure")
	}
	j.runs = append(j.runs, run)
	j.seeds = append(j.seeds, seed)
	j.results = append(j.results, r)
	return nil
}
func (j *memJournal) Barrier(b Batch) error {
	j.barriers = append(j.barriers, b.Start+len(b.Results))
	return nil
}
func (j *memJournal) Flush() error {
	j.flushes++
	return nil
}

// TestJournalProtocol: every run is logged exactly once, in run order,
// with its derived seed, and Barrier follows each delivered batch.
func TestJournalProtocol(t *testing.T) {
	app := smallTVCA(t)
	j := &memJournal{}
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 23, BatchSize: 10, Parallel: 4, BaseSeed: 9, Journal: j}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.runs) != 23 {
		t.Fatalf("journal logged %d runs, want 23", len(j.runs))
	}
	for i, run := range j.runs {
		if run != i {
			t.Fatalf("journal entry %d is run %d (out of order)", i, run)
		}
		if j.seeds[i] != DeriveRunSeed(9, i) {
			t.Errorf("run %d journaled with wrong seed", i)
		}
		if j.results[i] != c.Results[i] {
			t.Errorf("run %d journaled result differs from campaign result", i)
		}
	}
	want := []int{10, 20, 23}
	if len(j.barriers) != len(want) {
		t.Fatalf("barriers = %v, want %v", j.barriers, want)
	}
	for i := range want {
		if j.barriers[i] != want[i] {
			t.Fatalf("barriers = %v, want %v", j.barriers, want)
		}
	}
	if j.flushes != 0 {
		t.Errorf("clean campaign flushed %d times", j.flushes)
	}
}

// TestCancelFlushesCompletedRuns: cancellation mid-batch journals the
// contiguous completed prefix (no checkpoint barrier) and returns it as
// a partial result, so the journal length always matches the reported
// progress.
func TestCancelFlushesCompletedRuns(t *testing.T) {
	app := smallTVCA(t)
	j := &memJournal{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	runner := func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
		r, err := p.RunCtx(ctx, w, run, seed)
		if executed.Add(1) == 7 {
			cancel() // cancel mid-batch, after the 7th completed run
		}
		return r, err
	}
	res, err := StreamCampaign(ctx, RAND(), app,
		StreamOptions{MaxRuns: 1000, BatchSize: 100, Parallel: 4, BaseSeed: 2,
			Runner: runner, Journal: j}, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("canceled campaign returned no partial result")
	}
	if len(res.Results) != len(j.runs) {
		t.Fatalf("partial result has %d runs but journal has %d", len(res.Results), len(j.runs))
	}
	for i, run := range j.runs {
		if run != i {
			t.Fatalf("journal entry %d is run %d", i, run)
		}
	}
	if j.flushes != 1 {
		t.Errorf("cancellation flushed %d times, want 1", j.flushes)
	}
	if len(j.barriers) != 0 {
		t.Errorf("canceled first batch still hit %d barriers", len(j.barriers))
	}
}

// TestResumeSkipsExecutedRuns: a resumed campaign re-executes only the
// missing seeds, re-delivers no batch the sink already observed, and
// reproduces the uninterrupted series bit-identically.
func TestResumeSkipsExecutedRuns(t *testing.T) {
	app := smallTVCA(t)
	base := StreamOptions{MaxRuns: 30, BatchSize: 10, Parallel: 3, BaseSeed: 4}
	ref, err := StreamCampaign(context.Background(), RAND(), app, base, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Crash fiction: one delivered batch (10 runs) plus a flushed tail of
	// 3 runs from the canceled second batch.
	var firstRun atomic.Int64
	firstRun.Store(1 << 30)
	o := base
	o.Resume = &ResumeState{StartBatch: 1, Delivered: 10, Prefix: append([]RunResult(nil), ref.Results[:13]...)}
	o.Runner = func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
		for {
			cur := firstRun.Load()
			if int64(run) >= cur || firstRun.CompareAndSwap(cur, int64(run)) {
				break
			}
		}
		return p.RunCtx(ctx, w, run, seed)
	}
	var batches []Batch
	reg := telemetry.New()
	o.Telemetry = reg
	got, err := StreamCampaign(context.Background(), RAND(), app, o,
		func(b Batch) (bool, error) { batches = append(batches, b); return false, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 30 {
		t.Fatalf("resumed campaign has %d runs", len(got.Results))
	}
	for i := range ref.Results {
		if got.Results[i] != ref.Results[i] {
			t.Fatalf("run %d differs after resume", i)
		}
	}
	if lowest := firstRun.Load(); lowest != 13 {
		t.Errorf("lowest re-executed run = %d, want 13 (skip already-journaled seeds)", lowest)
	}
	if len(batches) != 2 || batches[0].Index != 1 || batches[0].Start != 10 || batches[1].Index != 2 {
		t.Fatalf("resumed sink saw wrong batches: %+v", batches)
	}
	if n := reg.Counter("campaign_resumes_total").Value(); n != 1 {
		t.Errorf("campaign_resumes_total = %d, want 1", n)
	}
}

// TestResumeValidation rejects inconsistent resume states.
func TestResumeValidation(t *testing.T) {
	app := smallTVCA(t)
	bad := []ResumeState{
		{StartBatch: 0, Delivered: 40, Prefix: make([]RunResult, 40)}, // delivered > budget
		{StartBatch: 1, Delivered: 5, Prefix: make([]RunResult, 5)},   // delivered not on a barrier
		{StartBatch: 1, Delivered: 10, Prefix: make([]RunResult, 25)}, // tail longer than a batch
		{StartBatch: 0, Delivered: 10, Prefix: make([]RunResult, 5)},  // prefix shorter than delivered
	}
	for i, rs := range bad {
		rs := rs
		o := StreamOptions{MaxRuns: 30, BatchSize: 10, BaseSeed: 1, Resume: &rs}
		if _, err := StreamCampaign(context.Background(), RAND(), app, o, nil); err == nil {
			t.Errorf("bad resume state %d accepted", i)
		}
	}
}

// TestJournalErrorAbortsCampaign: a failing journal is a campaign
// failure, not silent data loss.
func TestJournalErrorAbortsCampaign(t *testing.T) {
	app := smallTVCA(t)
	j := &memJournal{failLog: true}
	_, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 10, BatchSize: 5, BaseSeed: 1, Journal: j}, nil)
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("journal failure surfaced as %v", err)
	}
}
