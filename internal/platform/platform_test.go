package platform

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/tlb"
	"repro/internal/tvca"
)

func smallTVCA(t *testing.T) *tvca.App {
	t.Helper()
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8 // halve the run length; keep the cache pressure
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{DET(), RAND()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPaperGeometry(t *testing.T) {
	for _, cfg := range []Config{DET(), RAND()} {
		if cfg.Cores != 4 {
			t.Errorf("%s: cores = %d, want 4", cfg.Name, cfg.Cores)
		}
		for _, cc := range []cache.Config{cfg.IL1, cfg.DL1} {
			if cc.SizeBytes != 16*1024 || cc.Ways != 4 {
				t.Errorf("%s/%s: geometry %d/%d-way, want 16KB 4-way",
					cfg.Name, cc.Name, cc.SizeBytes, cc.Ways)
			}
		}
		if cfg.DL1.WriteAllocate {
			t.Errorf("%s: DL1 must be no-write-allocate", cfg.Name)
		}
		for _, tc := range []tlb.Config{cfg.ITLB, cfg.DTLB} {
			if tc.Entries != 64 {
				t.Errorf("%s/%s: %d entries, want 64", cfg.Name, tc.Name, tc.Entries)
			}
		}
	}
}

func TestDETvsRANDPolicies(t *testing.T) {
	det, rand := DET(), RAND()
	if det.IL1.Placement != cache.PlacementModulo || det.IL1.Replacement != cache.ReplaceLRU {
		t.Error("DET IL1 policies wrong")
	}
	if det.FPUMode != fpu.ModeOperation {
		t.Error("DET FPU mode wrong")
	}
	if rand.IL1.Placement != cache.PlacementRandomModulo || rand.IL1.Replacement != cache.ReplaceRandom {
		t.Error("RAND IL1 policies wrong")
	}
	if rand.ITLB.Replacement != tlb.ReplaceRandom || rand.DTLB.Replacement != tlb.ReplaceRandom {
		t.Error("RAND TLB policies wrong")
	}
	if rand.FPUMode != fpu.ModeAnalysis {
		t.Error("RAND FPU mode wrong")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := DET()
	c.Cores = 0
	if err := c.Validate(); err == nil {
		t.Error("cores=0 accepted")
	}
	c = DET()
	c.FPUMode = "turbo"
	if err := c.Validate(); err == nil {
		t.Error("bad FPU mode accepted")
	}
	c = RAND()
	c.Interference = &InterferenceConfig{Cores: 5, PeriodCycles: 100}
	if err := c.Validate(); err == nil {
		t.Error("too many interfering cores accepted")
	}
	c = RAND()
	c.Interference = &InterferenceConfig{Cores: 1, PeriodCycles: 0}
	if err := c.Validate(); err == nil {
		t.Error("zero interference period accepted")
	}
}

func TestDETRunsAreBitIdenticalAcrossSeeds(t *testing.T) {
	// The deterministic platform must produce the same cycle count for
	// the same run (same inputs) regardless of the run seed.
	app := smallTVCA(t)
	p, err := New(DET())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Run(app, 5, 111)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(app, 5, 999999)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("DET cycles differ across seeds: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

func TestRANDRunsVaryAcrossSeeds(t *testing.T) {
	app := smallTVCA(t)
	p, err := New(RAND())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for seed := uint64(1); seed <= 12; seed++ {
		r, err := p.Run(app, 5, seed*7919)
		if err != nil {
			t.Fatal(err)
		}
		seen[r.Cycles] = true
	}
	if len(seen) < 6 {
		t.Errorf("RAND produced only %d distinct times over 12 seeds", len(seen))
	}
}

func TestRunReproducibleGivenSeed(t *testing.T) {
	app := smallTVCA(t)
	for _, cfg := range []Config{DET(), RAND()} {
		p1, _ := New(cfg)
		p2, _ := New(cfg)
		a, err := p1.Run(app, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p2.Run(app, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.Path != b.Path || a.Instructions != b.Instructions {
			t.Errorf("%s: runs with same seed differ: %+v vs %+v", cfg.Name, a, b)
		}
	}
}

func TestArchitecturalResultsPlatformIndependent(t *testing.T) {
	// Timing differs between DET and RAND but the computed outputs and
	// executed path must be identical — the same binary and inputs.
	app := smallTVCA(t)
	det, _ := New(DET())
	rand, _ := New(RAND())
	for run := 0; run < 5; run++ {
		rd, err := det.Run(app, run, 1)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := rand.Run(app, run, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Path != rr.Path {
			t.Errorf("run %d: path %q (DET) != %q (RAND)", run, rd.Path, rr.Path)
		}
		if rd.Instructions != rr.Instructions {
			t.Errorf("run %d: instructions %d != %d", run, rd.Instructions, rr.Instructions)
		}
	}
}

func TestCampaignDeterministicAndOrdered(t *testing.T) {
	app := smallTVCA(t)
	opts := StreamOptions{MaxRuns: 24, BatchSize: 24, BaseSeed: 7, Parallel: 4}
	c1, err := StreamCampaign(context.Background(), RAND(), app, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 1
	c2, err := StreamCampaign(context.Background(), RAND(), app, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Results) != 24 || len(c2.Results) != 24 {
		t.Fatal("wrong result count")
	}
	for i := range c1.Results {
		if c1.Results[i] != c2.Results[i] {
			t.Fatalf("run %d differs between parallel and serial: %+v vs %+v",
				i, c1.Results[i], c2.Results[i])
		}
	}
	if c1.Platform != "RAND" || c1.Workload != "TVCA" {
		t.Errorf("labels %q %q", c1.Platform, c1.Workload)
	}
}

func TestCampaignTimesAndPaths(t *testing.T) {
	app := smallTVCA(t)
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 30, BatchSize: 30, BaseSeed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	times := c.Times()
	if len(times) != 30 {
		t.Fatal("times length")
	}
	for _, v := range times {
		if v <= 0 {
			t.Fatal("non-positive execution time")
		}
	}
	byPath := c.TimesByPath()
	total := 0
	for _, ts := range byPath {
		total += len(ts)
	}
	if total != 30 {
		t.Errorf("per-path counts sum to %d", total)
	}
}

func TestCampaignRejectsZeroRuns(t *testing.T) {
	app := smallTVCA(t)
	if _, err := StreamCampaign(context.Background(), RAND(), app, StreamOptions{MaxRuns: 0}, nil); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestDeriveRunSeedDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		s := DeriveRunSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate seed at run %d", i)
		}
		seen[s] = true
	}
}

func TestInterferenceSlowsDownRuns(t *testing.T) {
	app := smallTVCA(t)
	base := RAND()
	noisy := RAND()
	noisy.Interference = &InterferenceConfig{Cores: 3, PeriodCycles: 50, Randomize: true}
	pBase, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	pNoisy, err := New(noisy)
	if err != nil {
		t.Fatal(err)
	}
	slower := 0
	for run := 0; run < 5; run++ {
		rb, err := pBase.Run(app, run, 9)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := pNoisy.Run(app, run, 9)
		if err != nil {
			t.Fatal(err)
		}
		if rn.Cycles > rb.Cycles {
			slower++
		}
	}
	if slower < 4 {
		t.Errorf("interference made only %d/5 runs slower", slower)
	}
}

func TestInterferenceDeterministicMode(t *testing.T) {
	app := smallTVCA(t)
	cfg := DET()
	cfg.Interference = &InterferenceConfig{Cores: 2, PeriodCycles: 100, Randomize: false}
	p1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := p1.Run(app, 0, 1)
	r2, _ := p2.Run(app, 0, 2) // different seed, deterministic interference
	if r1.Cycles != r2.Cycles {
		t.Errorf("deterministic interference varies with seed: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

// trivialWorkload exercises the Workload plumbing with a 3-instruction
// program.
type trivialWorkload struct{}

func (trivialWorkload) Name() string { return "trivial" }
func (trivialWorkload) Prepare(run int) (*isa.Machine, error) {
	b := isa.NewBuilder("trivial", 0)
	b.Li(1, int32(run)).Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(p, isa.NewMemory()), nil
}
func (trivialWorkload) PathOf(*isa.Machine) string { return "" }

func TestTrivialWorkloadRuns(t *testing.T) {
	p, err := New(DET())
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(trivialWorkload{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 2 {
		t.Errorf("instructions = %d, want 2", r.Instructions)
	}
	if r.Path != "" {
		t.Errorf("path = %q", r.Path)
	}
}

func TestDeriveRunSeedBitBalance(t *testing.T) {
	// Each output bit should be set for roughly half the run indices —
	// a heavily biased bit would correlate the per-run randomization.
	const n = 10000
	var ones [64]int
	for i := 0; i < n; i++ {
		s := DeriveRunSeed(42, i)
		for b := 0; b < 64; b++ {
			if s>>uint(b)&1 == 1 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		// 5000 +- ~5 sigma (sigma = sqrt(n)/2 = 50).
		if c < 4750 || c > 5250 {
			t.Errorf("bit %d set in %d/%d seeds", b, c, n)
		}
	}
}

func TestDeriveRunSeedAvalanche(t *testing.T) {
	// Adjacent run indices must produce uncorrelated seeds: the mean
	// Hamming distance between seeds of consecutive runs is ~32 bits.
	const n = 5000
	total := 0
	for i := 0; i < n; i++ {
		d := DeriveRunSeed(7, i) ^ DeriveRunSeed(7, i+1)
		for ; d != 0; d &= d - 1 {
			total++
		}
	}
	mean := float64(total) / n
	if mean < 28 || mean > 36 {
		t.Errorf("mean Hamming distance %.2f, want ~32", mean)
	}
}

func TestDeriveRunSeedNoCollisionsAcrossBases(t *testing.T) {
	// Campaigns with different base seeds should not share per-run
	// seeds over realistic campaign sizes.
	seen := make(map[uint64]string, 40000)
	for _, base := range []uint64{0, 1, 42, 0xDEADBEEF} {
		for i := 0; i < 10000; i++ {
			s := DeriveRunSeed(base, i)
			key := fmt.Sprintf("base %#x run %d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %#x", prev, key, s)
			}
			seen[s] = key
		}
	}
}
