package platform

// CampaignResult holds the outcome of a measurement campaign: per-run
// results in run order. Order matters — the Ljung-Box independence test
// is applied to the series as collected.
type CampaignResult struct {
	Platform string
	Workload string
	Results  []RunResult
}

// Times returns the execution-time series in cycles. Quarantined runs
// (non-empty Outcome, set by a fault-injection layer) are excluded so
// the i.i.d. gate and the tail fit only ever see clean measurements;
// run order among the clean runs is preserved.
func (c *CampaignResult) Times() []float64 {
	out := make([]float64, 0, len(c.Results))
	for _, r := range c.Results {
		if r.Quarantined() {
			continue
		}
		out = append(out, float64(r.Cycles))
	}
	return out
}

// TimesByPath groups the execution times by path identifier, preserving
// run order within each path — the input to per-path MBPTA. Like Times,
// it excludes quarantined runs.
func (c *CampaignResult) TimesByPath() map[string][]float64 {
	out := make(map[string][]float64)
	for _, r := range c.Results {
		if r.Quarantined() {
			continue
		}
		out[r.Path] = append(out[r.Path], float64(r.Cycles))
	}
	return out
}

// Quarantined counts the runs excluded from the measurement series.
func (c *CampaignResult) Quarantined() int {
	n := 0
	for _, r := range c.Results {
		if r.Quarantined() {
			n++
		}
	}
	return n
}

// OutcomeCounts tallies the quarantined runs by outcome class. Clean
// runs are not included; the map is empty for a fault-free campaign.
func (c *CampaignResult) OutcomeCounts() map[string]int {
	out := make(map[string]int)
	for _, r := range c.Results {
		if r.Quarantined() {
			out[r.Outcome]++
		}
	}
	return out
}

// DeriveRunSeed maps (baseSeed, run) to the per-run PRNG seed installed
// after reloading the binary, as the protocol prescribes. SplitMix-style
// mixing keeps seeds of consecutive runs statistically independent.
func DeriveRunSeed(baseSeed uint64, run int) uint64 {
	z := baseSeed + 0x9E3779B97F4A7C15*uint64(run+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
