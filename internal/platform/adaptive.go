package platform

import (
	"fmt"

	"repro/internal/evt"
)

// AdaptiveOptions tunes AdaptiveCampaign, the paper's actual collection
// protocol: runs are collected in batches until the tail fit satisfies
// the CRPS convergence criterion (plus a minimum), or MaxRuns is hit.
type AdaptiveOptions struct {
	// MinRuns before convergence may stop the campaign (default 300).
	MinRuns int
	// MaxRuns hard cap (default 10x MinRuns).
	MaxRuns int
	// Batch size between refits (default 100).
	Batch int
	// BlockSize of the block-maxima fit (default 50).
	BlockSize int
	// BaseSeed derives per-run seeds.
	BaseSeed uint64
	// Threshold and Streak override the convergence criterion defaults
	// (1e-3, 2) when non-zero.
	Threshold float64
	Streak    int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.MinRuns == 0 {
		o.MinRuns = 300
	}
	if o.MaxRuns == 0 {
		o.MaxRuns = 10 * o.MinRuns
	}
	if o.Batch == 0 {
		o.Batch = 100
	}
	if o.BlockSize == 0 {
		o.BlockSize = 50
	}
	return o
}

// AdaptiveResult is the outcome of an adaptive campaign.
type AdaptiveResult struct {
	Campaign  *CampaignResult
	Converged bool
	// StopRuns is the run count at which the criterion was satisfied
	// (== len(Campaign.Results) when Converged).
	StopRuns int
	// Distances is the CRPS trace between consecutive refits.
	Distances []float64
}

// AdaptiveCampaign implements the MBPTA collection loop: measure a
// batch, refit the Gumbel tail over everything collected so far, and
// stop once consecutive fits are CRPS-close — "enough runs" decided by
// the data, exactly as the paper's protocol prescribes. The same
// (cfg, w, opts) always reproduces the same campaign.
func AdaptiveCampaign(cfg Config, w Workload, opts AdaptiveOptions) (*AdaptiveResult, error) {
	o := opts.withDefaults()
	if o.MinRuns < 5*o.BlockSize {
		return nil, fmt.Errorf("platform: MinRuns %d < 5 blocks of %d", o.MinRuns, o.BlockSize)
	}
	if o.MaxRuns < o.MinRuns {
		return nil, fmt.Errorf("platform: MaxRuns %d < MinRuns %d", o.MaxRuns, o.MinRuns)
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	crit := evt.NewConvergenceCriterion()
	if o.Threshold > 0 {
		crit.Threshold = o.Threshold
	}
	if o.Streak > 0 {
		crit.Streak = o.Streak
	}
	res := &AdaptiveResult{Campaign: &CampaignResult{Platform: cfg.Name, Workload: w.Name()}}
	var times []float64
	run := 0
	for run < o.MaxRuns {
		for b := 0; b < o.Batch && run < o.MaxRuns; b++ {
			r, err := p.Run(w, run, DeriveRunSeed(o.BaseSeed, run))
			if err != nil {
				return nil, err
			}
			res.Campaign.Results = append(res.Campaign.Results, r)
			times = append(times, float64(r.Cycles))
			run++
		}
		if run < o.MinRuns {
			continue
		}
		maxima, _, err := evt.BlockMaxima(times, o.BlockSize)
		if err != nil {
			return nil, err
		}
		fit, err := evt.FitGumbel(maxima, evt.MethodPWM)
		if err != nil {
			// Degenerate (e.g. constant) samples cannot converge by
			// refitting; report the campaign as-is.
			res.StopRuns = run
			return res, nil
		}
		done, err := crit.Observe(fit)
		if err != nil {
			return nil, err
		}
		res.Distances = crit.History()
		if done {
			res.Converged = true
			res.StopRuns = run
			return res, nil
		}
	}
	res.StopRuns = run
	return res, nil
}
