package platform

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
)

// streamSeries runs a streaming campaign and returns the series.
func streamSeries(t *testing.T, opts StreamOptions) *CampaignResult {
	t.Helper()
	app := smallTVCA(t)
	c, err := StreamCampaign(context.Background(), RAND(), app, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStreamDeterministicAcrossParallelismAndBatchSize(t *testing.T) {
	// The engine's core guarantee: neither the worker count nor the
	// batch size may change the measured series — run i always uses
	// DeriveRunSeed(base, i) and batches are barriers.
	const runs = 30
	ref := streamSeries(t, StreamOptions{MaxRuns: runs, BatchSize: 250, Parallel: 1, BaseSeed: 7})
	if len(ref.Results) != runs {
		t.Fatalf("reference has %d runs", len(ref.Results))
	}
	variants := []StreamOptions{
		{MaxRuns: runs, BatchSize: 1, Parallel: 1, BaseSeed: 7},
		{MaxRuns: runs, BatchSize: 1, Parallel: 8, BaseSeed: 7},
		{MaxRuns: runs, BatchSize: 250, Parallel: 8, BaseSeed: 7},
	}
	for _, opts := range variants {
		got := streamSeries(t, opts)
		if len(got.Results) != runs {
			t.Fatalf("batch=%d parallel=%d: %d runs", opts.BatchSize, opts.Parallel, len(got.Results))
		}
		for i := range ref.Results {
			if got.Results[i] != ref.Results[i] {
				t.Fatalf("batch=%d parallel=%d: run %d differs: %+v vs %+v",
					opts.BatchSize, opts.Parallel, i, got.Results[i], ref.Results[i])
			}
		}
	}
}

func TestStreamSinkSeesOrderedPrefix(t *testing.T) {
	app := smallTVCA(t)
	var batches []Batch
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 20, BatchSize: 6, Parallel: 4, BaseSeed: 3},
		func(b Batch) (bool, error) {
			batches = append(batches, b)
			return false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 4 { // 6+6+6+2
		t.Fatalf("%d batches", len(batches))
	}
	next := 0
	for i, b := range batches {
		if b.Index != i || b.Start != next {
			t.Fatalf("batch %d: index=%d start=%d (want start %d)", i, b.Index, b.Start, next)
		}
		next += len(b.Results)
	}
	if next != len(c.Results) || next != 20 {
		t.Fatalf("batches cover %d of %d runs", next, len(c.Results))
	}
}

func TestStreamSinkEarlyStop(t *testing.T) {
	app := smallTVCA(t)
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 1000, BatchSize: 5, Parallel: 2, BaseSeed: 3},
		func(b Batch) (bool, error) { return b.Index == 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 15 {
		t.Fatalf("stopped campaign has %d runs, want 15", len(c.Results))
	}
}

func TestStreamCancellation(t *testing.T) {
	app := smallTVCA(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	_, err := StreamCampaign(ctx, RAND(), app,
		StreamOptions{MaxRuns: 100000, BatchSize: 10, Parallel: 4, BaseSeed: 1},
		func(b Batch) (bool, error) {
			cancel() // cancel mid-campaign, after the first batch
			return false, nil
		})
	if err == nil {
		t.Fatal("canceled campaign returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancellation took %s", d)
	}
	// No goroutine leak: the workers must all have exited.
	for i := 0; ; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if i >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// faultyWorkload fails Prepare for run indices in fail, and counts how
// many runs were prepared in total.
type faultyWorkload struct {
	fail     map[int]string
	prepared *atomic.Int64
}

func (f faultyWorkload) Name() string { return "faulty" }
func (f faultyWorkload) Prepare(run int) (*isa.Machine, error) {
	f.prepared.Add(1)
	if msg, ok := f.fail[run]; ok {
		return nil, errors.New(msg)
	}
	b := isa.NewBuilder("faulty", 0)
	b.Li(1, int32(run)).Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(p, isa.NewMemory()), nil
}
func (f faultyWorkload) PathOf(*isa.Machine) string { return "" }

func TestStreamStopsOnFirstWorkerError(t *testing.T) {
	// A failing run must stop the campaign at the next run boundary
	// instead of draining the whole queue.
	var prepared atomic.Int64
	w := faultyWorkload{fail: map[int]string{10: "boom at run 10"}, prepared: &prepared}
	const maxRuns = 100000
	_, err := StreamCampaign(context.Background(), DET(), w,
		StreamOptions{MaxRuns: maxRuns, BatchSize: maxRuns, Parallel: 4, BaseSeed: 1}, nil)
	if err == nil {
		t.Fatal("failing campaign returned nil error")
	}
	if !strings.Contains(err.Error(), "boom at run 10") {
		t.Errorf("error %v does not mention the failing run", err)
	}
	if n := prepared.Load(); n >= maxRuns/2 {
		t.Errorf("workers drained %d of %d runs after the error", n, maxRuns)
	}
}

func TestStreamJoinsDistinctWorkerErrors(t *testing.T) {
	var prepared atomic.Int64
	// Every run fails, alternating between two distinct messages, so
	// with two workers both distinct errors are observed and joined.
	fail := make(map[int]string)
	for i := 0; i < 8; i++ {
		fail[i] = fmt.Sprintf("boom kind %d", i%2)
	}
	w := faultyWorkload{fail: fail, prepared: &prepared}
	_, err := StreamCampaign(context.Background(), DET(), w,
		StreamOptions{MaxRuns: 8, BatchSize: 8, Parallel: 2, BaseSeed: 1}, nil)
	if err == nil {
		t.Fatal("failing campaign returned nil error")
	}
	if !strings.Contains(err.Error(), "boom kind") {
		t.Errorf("unexpected error: %v", err)
	}
	// Duplicate messages must be deduplicated by the join.
	if n := strings.Count(err.Error(), "boom kind 0"); n > 1 {
		t.Errorf("error message repeats a worker error %d times:\n%v", n, err)
	}
}

func TestJoinDistinct(t *testing.T) {
	a, b := errors.New("a"), errors.New("b")
	if err := joinDistinct([]error{nil, nil}); err != nil {
		t.Errorf("all-nil join = %v", err)
	}
	err := joinDistinct([]error{a, nil, errors.New("a"), b})
	if err == nil || !errors.Is(err, a) || !errors.Is(err, b) {
		t.Fatalf("join lost errors: %v", err)
	}
	if strings.Count(err.Error(), "a") != 1 {
		t.Errorf("duplicate not removed: %q", err.Error())
	}
}

func TestStreamRejectsZeroRuns(t *testing.T) {
	app := smallTVCA(t)
	if _, err := StreamCampaign(context.Background(), RAND(), app, StreamOptions{}, nil); err == nil {
		t.Error("zero-run campaign accepted")
	}
}

func TestStreamBatchSizeExceedsRemaining(t *testing.T) {
	// A batch size larger than the budget clamps to it: one batch of
	// exactly MaxRuns runs, same series as any other batching.
	app := smallTVCA(t)
	var batches []Batch
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 7, BatchSize: 1000, Parallel: 2, BaseSeed: 7},
		func(b Batch) (bool, error) {
			batches = append(batches, b)
			return false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 7 {
		t.Fatalf("%d runs, want 7", len(c.Results))
	}
	if len(batches) != 1 || len(batches[0].Results) != 7 {
		t.Fatalf("batches %+v, want one batch of 7", batches)
	}
	ref := streamSeries(t, StreamOptions{MaxRuns: 7, BatchSize: 2, Parallel: 1, BaseSeed: 7})
	for i := range ref.Results {
		if c.Results[i] != ref.Results[i] {
			t.Fatalf("run %d differs from reference batching", i)
		}
	}
}

func TestStreamPartialFinalBatch(t *testing.T) {
	// MaxRuns not divisible by BatchSize: the final batch carries the
	// remainder and the series still covers every run exactly once.
	app := smallTVCA(t)
	var sizes []int
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 11, BatchSize: 4, Parallel: 3, BaseSeed: 9},
		func(b Batch) (bool, error) {
			sizes = append(sizes, len(b.Results))
			return false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 11 {
		t.Fatalf("%d runs, want 11", len(c.Results))
	}
	want := []int{4, 4, 3}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", sizes, want)
		}
	}
}

func TestStreamCustomRunnerAndQuarantine(t *testing.T) {
	// A substituted Runner fully controls the per-run result; runs it
	// quarantines stay in the series but out of the measurements.
	runner := func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
		r := RunResult{Cycles: uint64(1000 + run), Instructions: 1, Path: "p"}
		if run%2 == 1 {
			r.Outcome = "timing-perturbed"
		}
		return r, nil
	}
	c, err := StreamCampaign(context.Background(), RAND(), smallTVCA(t),
		StreamOptions{MaxRuns: 10, BatchSize: 4, Parallel: 2, BaseSeed: 1, Runner: runner}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 10 {
		t.Fatalf("%d runs", len(c.Results))
	}
	if got := len(c.Times()); got != 5 {
		t.Errorf("Times() has %d clean runs, want 5", got)
	}
	if got := c.Quarantined(); got != 5 {
		t.Errorf("Quarantined() = %d, want 5", got)
	}
	if n := c.OutcomeCounts()["timing-perturbed"]; n != 5 {
		t.Errorf("OutcomeCounts = %v", c.OutcomeCounts())
	}
}

func TestRunResilientRetriesTransientFailure(t *testing.T) {
	// Each run fails once, then succeeds; the retry policy must absorb
	// the transient failures and reuse the same derived seed.
	var calls atomic.Int64
	failed := make(map[int]*atomic.Bool)
	var mu sync.Mutex
	runner := func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
		calls.Add(1)
		if want := DeriveRunSeed(5, run); seed != want {
			t.Errorf("run %d: seed %#x, want %#x", run, seed, want)
		}
		mu.Lock()
		f, ok := failed[run]
		if !ok {
			f = &atomic.Bool{}
			failed[run] = f
		}
		mu.Unlock()
		if f.CompareAndSwap(false, true) {
			return RunResult{}, errors.New("transient")
		}
		return RunResult{Cycles: uint64(run)}, nil
	}
	c, err := StreamCampaign(context.Background(), RAND(), smallTVCA(t),
		StreamOptions{MaxRuns: 6, BatchSize: 6, Parallel: 2, BaseSeed: 5, Runner: runner,
			Retry: RetryPolicy{MaxAttempts: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range c.Results {
		if r.Cycles != uint64(i) {
			t.Errorf("run %d: cycles %d", i, r.Cycles)
		}
	}
	if n := calls.Load(); n != 12 { // 6 runs x (1 failure + 1 success)
		t.Errorf("%d runner calls, want 12", n)
	}
}

func TestExecuteRunExhaustsRetries(t *testing.T) {
	sentinel := errors.New("persistent fault")
	runner := func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
		return RunResult{}, sentinel
	}
	_, err := ExecuteRun(context.Background(), (*Platform)(nil), nil, 1, 4,
		ExecPolicy{Runner: runner, Retry: RetryPolicy{MaxAttempts: 3}})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report the attempt count: %v", err)
	}
}

func TestExecuteRunTimeout(t *testing.T) {
	// A runner that honors ctx must be cut off by RunTimeout and the
	// failure classified as ErrRunTimeout after the retries run out.
	var attempts atomic.Int64
	runner := func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
		attempts.Add(1)
		<-ctx.Done()
		return RunResult{}, ctx.Err()
	}
	start := time.Now()
	_, err := ExecuteRun(context.Background(), (*Platform)(nil), nil, 1, 0,
		ExecPolicy{Runner: runner, RunTimeout: 20 * time.Millisecond, Retry: RetryPolicy{MaxAttempts: 2}})
	if err == nil {
		t.Fatal("hung runner returned nil error")
	}
	if !errors.Is(err, ErrRunTimeout) {
		t.Errorf("errors.Is(err, ErrRunTimeout) = false: %v", err)
	}
	if n := attempts.Load(); n != 2 {
		t.Errorf("%d attempts, want 2", n)
	}
	// The watchdog must not stall the campaign: both attempts bounded.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("timed-out run took %s", d)
	}
}

func TestExecuteRunCampaignCancelStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int64
	runner := func(ctx context.Context, p *Platform, w Workload, run int, seed uint64) (RunResult, error) {
		attempts.Add(1)
		cancel() // the campaign dies while this run is in flight
		return RunResult{}, errors.New("boom")
	}
	_, err := ExecuteRun(ctx, (*Platform)(nil), nil, 1, 0,
		ExecPolicy{Runner: runner, Retry: RetryPolicy{MaxAttempts: 5, Backoff: time.Hour}})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("%d attempts after campaign cancel, want 1 (no backoff spin)", n)
	}
}
