package platform

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
)

// streamSeries runs a streaming campaign and returns the series.
func streamSeries(t *testing.T, opts StreamOptions) *CampaignResult {
	t.Helper()
	app := smallTVCA(t)
	c, err := StreamCampaign(context.Background(), RAND(), app, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStreamDeterministicAcrossParallelismAndBatchSize(t *testing.T) {
	// The engine's core guarantee: neither the worker count nor the
	// batch size may change the measured series — run i always uses
	// DeriveRunSeed(base, i) and batches are barriers.
	const runs = 30
	ref := streamSeries(t, StreamOptions{MaxRuns: runs, BatchSize: 250, Parallel: 1, BaseSeed: 7})
	if len(ref.Results) != runs {
		t.Fatalf("reference has %d runs", len(ref.Results))
	}
	variants := []StreamOptions{
		{MaxRuns: runs, BatchSize: 1, Parallel: 1, BaseSeed: 7},
		{MaxRuns: runs, BatchSize: 1, Parallel: 8, BaseSeed: 7},
		{MaxRuns: runs, BatchSize: 250, Parallel: 8, BaseSeed: 7},
	}
	for _, opts := range variants {
		got := streamSeries(t, opts)
		if len(got.Results) != runs {
			t.Fatalf("batch=%d parallel=%d: %d runs", opts.BatchSize, opts.Parallel, len(got.Results))
		}
		for i := range ref.Results {
			if got.Results[i] != ref.Results[i] {
				t.Fatalf("batch=%d parallel=%d: run %d differs: %+v vs %+v",
					opts.BatchSize, opts.Parallel, i, got.Results[i], ref.Results[i])
			}
		}
	}
}

func TestStreamSinkSeesOrderedPrefix(t *testing.T) {
	app := smallTVCA(t)
	var batches []Batch
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 20, BatchSize: 6, Parallel: 4, BaseSeed: 3},
		func(b Batch) (bool, error) {
			batches = append(batches, b)
			return false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 4 { // 6+6+6+2
		t.Fatalf("%d batches", len(batches))
	}
	next := 0
	for i, b := range batches {
		if b.Index != i || b.Start != next {
			t.Fatalf("batch %d: index=%d start=%d (want start %d)", i, b.Index, b.Start, next)
		}
		next += len(b.Results)
	}
	if next != len(c.Results) || next != 20 {
		t.Fatalf("batches cover %d of %d runs", next, len(c.Results))
	}
}

func TestStreamSinkEarlyStop(t *testing.T) {
	app := smallTVCA(t)
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 1000, BatchSize: 5, Parallel: 2, BaseSeed: 3},
		func(b Batch) (bool, error) { return b.Index == 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 15 {
		t.Fatalf("stopped campaign has %d runs, want 15", len(c.Results))
	}
}

func TestStreamCancellation(t *testing.T) {
	app := smallTVCA(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	_, err := StreamCampaign(ctx, RAND(), app,
		StreamOptions{MaxRuns: 100000, BatchSize: 10, Parallel: 4, BaseSeed: 1},
		func(b Batch) (bool, error) {
			cancel() // cancel mid-campaign, after the first batch
			return false, nil
		})
	if err == nil {
		t.Fatal("canceled campaign returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancellation took %s", d)
	}
	// No goroutine leak: the workers must all have exited.
	for i := 0; ; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if i >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// faultyWorkload fails Prepare for run indices in fail, and counts how
// many runs were prepared in total.
type faultyWorkload struct {
	fail     map[int]string
	prepared *atomic.Int64
}

func (f faultyWorkload) Name() string { return "faulty" }
func (f faultyWorkload) Prepare(run int) (*isa.Machine, error) {
	f.prepared.Add(1)
	if msg, ok := f.fail[run]; ok {
		return nil, errors.New(msg)
	}
	b := isa.NewBuilder("faulty", 0)
	b.Li(1, int32(run)).Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(p, isa.NewMemory()), nil
}
func (f faultyWorkload) PathOf(*isa.Machine) string { return "" }

func TestStreamStopsOnFirstWorkerError(t *testing.T) {
	// A failing run must stop the campaign at the next run boundary
	// instead of draining the whole queue.
	var prepared atomic.Int64
	w := faultyWorkload{fail: map[int]string{10: "boom at run 10"}, prepared: &prepared}
	const maxRuns = 100000
	_, err := StreamCampaign(context.Background(), DET(), w,
		StreamOptions{MaxRuns: maxRuns, BatchSize: maxRuns, Parallel: 4, BaseSeed: 1}, nil)
	if err == nil {
		t.Fatal("failing campaign returned nil error")
	}
	if !strings.Contains(err.Error(), "boom at run 10") {
		t.Errorf("error %v does not mention the failing run", err)
	}
	if n := prepared.Load(); n >= maxRuns/2 {
		t.Errorf("workers drained %d of %d runs after the error", n, maxRuns)
	}
}

func TestStreamJoinsDistinctWorkerErrors(t *testing.T) {
	var prepared atomic.Int64
	// Every run fails, alternating between two distinct messages, so
	// with two workers both distinct errors are observed and joined.
	fail := make(map[int]string)
	for i := 0; i < 8; i++ {
		fail[i] = fmt.Sprintf("boom kind %d", i%2)
	}
	w := faultyWorkload{fail: fail, prepared: &prepared}
	_, err := StreamCampaign(context.Background(), DET(), w,
		StreamOptions{MaxRuns: 8, BatchSize: 8, Parallel: 2, BaseSeed: 1}, nil)
	if err == nil {
		t.Fatal("failing campaign returned nil error")
	}
	if !strings.Contains(err.Error(), "boom kind") {
		t.Errorf("unexpected error: %v", err)
	}
	// Duplicate messages must be deduplicated by the join.
	if n := strings.Count(err.Error(), "boom kind 0"); n > 1 {
		t.Errorf("error message repeats a worker error %d times:\n%v", n, err)
	}
}

func TestJoinDistinct(t *testing.T) {
	a, b := errors.New("a"), errors.New("b")
	if err := joinDistinct([]error{nil, nil}); err != nil {
		t.Errorf("all-nil join = %v", err)
	}
	err := joinDistinct([]error{a, nil, errors.New("a"), b})
	if err == nil || !errors.Is(err, a) || !errors.Is(err, b) {
		t.Fatalf("join lost errors: %v", err)
	}
	if strings.Count(err.Error(), "a") != 1 {
		t.Errorf("duplicate not removed: %q", err.Error())
	}
}

func TestStreamRejectsZeroRuns(t *testing.T) {
	app := smallTVCA(t)
	if _, err := StreamCampaign(context.Background(), RAND(), app, StreamOptions{}, nil); err == nil {
		t.Error("zero-run campaign accepted")
	}
}
