package platform

import (
	"context"
	"math"
	"testing"

	"repro/internal/telemetry"
)

// TestStreamTelemetryHarvest runs a telemetry-enabled campaign with
// worker parallelism (this is the configuration `make race` exercises)
// and checks the harvested instruments against ground truth from the
// campaign result and the substrate accounting identities.
func TestStreamTelemetryHarvest(t *testing.T) {
	const runs = 40
	app := smallTVCA(t)
	reg := telemetry.New()
	ring := telemetry.NewRingSink(256)
	reg.Attach(ring)

	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: runs, BatchSize: 8, Parallel: 4, BaseSeed: 5, Telemetry: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}

	var cycles, instructions uint64
	for _, r := range c.Results {
		cycles += r.Cycles
		instructions += r.Instructions
	}
	snap := reg.Snapshot()
	if got := snap["campaign_runs_total"]; got != runs {
		t.Errorf("campaign_runs_total = %v, want %d", got, runs)
	}
	if got := snap["campaign_batches_total"]; got != 5 {
		t.Errorf("campaign_batches_total = %v, want 5", got)
	}
	if got := snap["sim_cycles_total"]; got != float64(cycles) {
		t.Errorf("sim_cycles_total = %v, want %d", got, cycles)
	}
	if got := snap["sim_instructions_total"]; got != float64(instructions) {
		t.Errorf("sim_instructions_total = %v, want %d", got, instructions)
	}
	if got := snap["sim_ipc"]; math.Abs(got-float64(instructions)/float64(cycles)) > 1e-12 {
		t.Errorf("sim_ipc = %v, want %v", got, float64(instructions)/float64(cycles))
	}
	// The TVCA workload touches every substrate level; the harvested
	// counters must be populated and the ratio gauges in (0, 1].
	for _, name := range []string{
		"sim_il1_hits_total", "sim_dl1_hits_total", "sim_dl1_misses_total",
		"sim_itlb_hits_total", "sim_dtlb_hits_total", "sim_dl1_mru_hits_total",
	} {
		if snap[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, snap[name])
		}
	}
	for _, name := range []string{
		"sim_il1_hit_ratio", "sim_dl1_hit_ratio",
		"sim_itlb_hit_ratio", "sim_dtlb_hit_ratio",
		"sim_il1_mru_hit_ratio", "sim_dl1_mru_hit_ratio",
	} {
		if v := snap[name]; v <= 0 || v > 1 {
			t.Errorf("%s = %v, want in (0, 1]", name, v)
		}
	}
	// Hit/MRU accounting: the MRU fast path is a subset of all hits.
	for _, lvl := range []string{"il1", "dl1"} {
		hits := snap["sim_"+lvl+"_hits_total"] + snap["sim_"+lvl+"_write_hits_total"]
		if mru := snap["sim_"+lvl+"_mru_hits_total"]; mru > hits {
			t.Errorf("%s: MRU hits %v exceed total hits %v", lvl, mru, hits)
		}
	}
	// Every run of this campaign interprets or replays — never both.
	if got := snap["sim_replay_runs_total"] + snap["sim_interpret_runs_total"]; got != runs {
		t.Errorf("replay+interpret = %v, want %d", got, runs)
	}

	// The event stream must cover the whole campaign in order.
	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	if evs[0].Kind != "campaign_start" || evs[len(evs)-1].Kind != "campaign_end" {
		t.Errorf("stream brackets = %s..%s, want campaign_start..campaign_end",
			evs[0].Kind, evs[len(evs)-1].Kind)
	}
	runEvents, lastRun := 0, -1
	for i, ev := range evs {
		if ev.Seq != evs[0].Seq+uint64(i) {
			t.Fatalf("event %d: seq %d breaks the contiguous order", i, ev.Seq)
		}
		if ev.Kind == "run" {
			runEvents++
			if ev.Run <= lastRun {
				t.Fatalf("run events out of order: %d after %d", ev.Run, lastRun)
			}
			lastRun = ev.Run
		}
	}
	if runEvents != runs {
		t.Errorf("run events = %d, want %d", runEvents, runs)
	}
}

// TestStreamTelemetryNilRegistry: the zero-config path must stay
// telemetry-free end to end (the allocation and golden-output
// guarantees elsewhere depend on it).
func TestStreamTelemetryNilRegistry(t *testing.T) {
	app := smallTVCA(t)
	c, err := StreamCampaign(context.Background(), RAND(), app,
		StreamOptions{MaxRuns: 5, BatchSize: 5, Parallel: 2, BaseSeed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 5 {
		t.Fatalf("%d runs", len(c.Results))
	}
}

// TestBoardStatsSub covers the delta arithmetic the barrier harvest
// rests on.
func TestBoardStatsSub(t *testing.T) {
	app := smallTVCA(t)
	p, err := New(RAND())
	if err != nil {
		t.Fatal(err)
	}
	before := p.BoardStats()
	if _, err := p.Run(app, 0, 1); err != nil {
		t.Fatal(err)
	}
	after := p.BoardStats()
	d := after.Sub(before)
	if d.InterpretRuns+d.ReplayRuns != 1 {
		t.Errorf("run delta = %d interpret + %d replay, want 1 total", d.InterpretRuns, d.ReplayRuns)
	}
	if d.IL1.Hits == 0 || d.DL1.Hits == 0 {
		t.Errorf("cache deltas empty: %+v", d)
	}
	if again := after.Sub(after); again != (BoardStats{}) {
		t.Errorf("self-delta = %+v, want zero", again)
	}
}
