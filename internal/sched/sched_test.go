package sched

import (
	"testing"
)

func tvcaLike() []Task {
	return []Task{
		{Name: "sensor", Period: 1, Priority: 0, WCET: 100},
		{Name: "actx", Period: 2, Priority: 1, WCET: 150},
		{Name: "acty", Period: 4, Priority: 2, WCET: 200},
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(tvcaLike()); err != nil {
		t.Fatal(err)
	}
	bad := [][]Task{
		{},
		{{Name: "a", Period: 0, Priority: 0}},
		{{Name: "a", Period: 1, Priority: 0}, {Name: "a", Period: 2, Priority: 1}},
		{{Name: "a", Period: 1, Priority: 0}, {Name: "b", Period: 2, Priority: 0}},
	}
	for i, ts := range bad {
		if err := Validate(ts); err == nil {
			t.Errorf("bad set %d accepted", i)
		}
	}
}

func TestHyperperiod(t *testing.T) {
	h, err := Hyperperiod(tvcaLike())
	if err != nil {
		t.Fatal(err)
	}
	if h != 4 {
		t.Errorf("hyperperiod = %d, want 4", h)
	}
	h, _ = Hyperperiod([]Task{
		{Name: "a", Period: 3, Priority: 0},
		{Name: "b", Period: 5, Priority: 1},
		{Name: "c", Period: 10, Priority: 2},
	})
	if h != 30 {
		t.Errorf("hyperperiod = %d, want 30", h)
	}
	if _, err := Hyperperiod(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestActivationTable(t *testing.T) {
	table, err := ActivationTable(tvcaLike(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 8 {
		t.Fatalf("table length %d", len(table))
	}
	// Frame 0: all three, priority order sensor, actx, acty.
	want0 := []int{0, 1, 2}
	if len(table[0]) != 3 {
		t.Fatalf("frame 0 activations %v", table[0])
	}
	for i, ti := range want0 {
		if table[0][i] != ti {
			t.Errorf("frame 0 = %v, want %v", table[0], want0)
			break
		}
	}
	// Frame 1: only the sensor.
	if len(table[1]) != 1 || table[1][0] != 0 {
		t.Errorf("frame 1 = %v", table[1])
	}
	// Frame 2: sensor + actx.
	if len(table[2]) != 2 || table[2][0] != 0 || table[2][1] != 1 {
		t.Errorf("frame 2 = %v", table[2])
	}
	// Frame 4: all three again.
	if len(table[4]) != 3 {
		t.Errorf("frame 4 = %v", table[4])
	}
	if _, err := ActivationTable(tvcaLike(), 0); err == nil {
		t.Error("frames=0 accepted")
	}
}

func TestActivationTablePriorityOrderWithShuffledInput(t *testing.T) {
	tasks := []Task{
		{Name: "low", Period: 1, Priority: 9},
		{Name: "high", Period: 1, Priority: 1},
		{Name: "mid", Period: 1, Priority: 5},
	}
	table, err := ActivationTable(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := table[0]
	if tasks[got[0]].Name != "high" || tasks[got[1]].Name != "mid" || tasks[got[2]].Name != "low" {
		t.Errorf("priority order wrong: %v", got)
	}
}

func TestResponseTimes(t *testing.T) {
	// frameCycles = 1000: sensor (C=100,T=1000), actx (C=150,T=2000),
	// acty (C=200,T=4000). Classic RTA:
	// R_sensor = 100.
	// R_actx = 150 + ceil(R/1000)*100 -> 250.
	// R_acty = 200 + ceil(R/1000)*100 + ceil(R/2000)*150 -> 450.
	rts, err := ResponseTimes(tvcaLike(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 250, 450}
	for i := range want {
		if rts[i] != want[i] {
			t.Errorf("R[%d] = %d, want %d", i, rts[i], want[i])
		}
	}
}

func TestResponseTimesUnschedulable(t *testing.T) {
	tasks := []Task{
		{Name: "hog", Period: 1, Priority: 0, WCET: 900},
		{Name: "starved", Period: 2, Priority: 1, WCET: 500},
	}
	if _, err := ResponseTimes(tasks, 1000); err == nil {
		t.Error("unschedulable set accepted")
	}
}

func TestResponseTimesInterferenceGrows(t *testing.T) {
	// A longer low-priority task must absorb more preemptions.
	tasks := tvcaLike()
	tasks[2].WCET = 1800 // acty nearly fills two frames
	rts, err := ResponseTimes(tasks, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// R_acty >= C + 2 sensor activations + 1-2 actx activations.
	if rts[2] < 1800+2*100+150 {
		t.Errorf("R_acty = %d, interference undercounted", rts[2])
	}
}

func TestUtilization(t *testing.T) {
	u, err := Utilization(tvcaLike(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0/1000 + 150.0/2000 + 200.0/4000
	if diff := u - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("U = %v, want %v", u, want)
	}
	if _, err := Utilization(tvcaLike(), 0); err == nil {
		t.Error("frameCycles=0 accepted")
	}
}
