// Package sched models the fixed-priority periodic task set of the
// case-study application. TVCA "implements a fixed priority scheduler
// with 3 periodic tasks"; this package provides the task-set
// abstraction, hyperperiod and activation-table computation (used by
// the workload generator to emit the dispatch code embedded in the
// binary) and a classical response-time analysis utility.
package sched

import (
	"errors"
	"fmt"
	"sort"
)

// Task is one periodic task. Periods are expressed in minor frames of
// the cyclic executive; lower Priority value = higher priority.
type Task struct {
	Name     string
	Period   int    // activation period in minor frames, >= 1
	Priority int    // fixed priority; lower is more urgent
	WCET     uint64 // execution-time budget in cycles (for RTA)
}

// ErrBadTaskSet reports an invalid task set.
var ErrBadTaskSet = errors.New("sched: invalid task set")

// Validate checks the task set: non-empty, positive periods, unique
// names and priorities.
func Validate(tasks []Task) error {
	if len(tasks) == 0 {
		return fmt.Errorf("%w: empty", ErrBadTaskSet)
	}
	names := make(map[string]bool)
	prios := make(map[int]bool)
	for _, t := range tasks {
		if t.Period < 1 {
			return fmt.Errorf("%w: task %q period %d", ErrBadTaskSet, t.Name, t.Period)
		}
		if names[t.Name] {
			return fmt.Errorf("%w: duplicate name %q", ErrBadTaskSet, t.Name)
		}
		if prios[t.Priority] {
			return fmt.Errorf("%w: duplicate priority %d", ErrBadTaskSet, t.Priority)
		}
		names[t.Name] = true
		prios[t.Priority] = true
	}
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Hyperperiod returns the least common multiple of the task periods —
// the length of the major frame in minor frames.
func Hyperperiod(tasks []Task) (int, error) {
	if err := Validate(tasks); err != nil {
		return 0, err
	}
	h := 1
	for _, t := range tasks {
		h = h / gcd(h, t.Period) * t.Period
	}
	return h, nil
}

// ActivationTable returns, for each of the frames minor frames, the
// indices (into tasks) of the tasks activated in that frame, ordered by
// priority (highest first). A task with period P activates in frames
// 0, P, 2P, ...
func ActivationTable(tasks []Task, frames int) ([][]int, error) {
	if err := Validate(tasks); err != nil {
		return nil, err
	}
	if frames < 1 {
		return nil, fmt.Errorf("%w: frames %d", ErrBadTaskSet, frames)
	}
	table := make([][]int, frames)
	for f := 0; f < frames; f++ {
		var act []int
		for i, t := range tasks {
			if f%t.Period == 0 {
				act = append(act, i)
			}
		}
		sort.Slice(act, func(a, b int) bool {
			return tasks[act[a]].Priority < tasks[act[b]].Priority
		})
		table[f] = act
	}
	return table, nil
}

// ResponseTimes computes the classical fixed-priority response-time
// analysis R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) C_j, with
// periods interpreted in frames of frameCycles cycles each. It returns
// the fixed-point response time per task, or an error if iteration
// exceeds the task's period (unschedulable).
func ResponseTimes(tasks []Task, frameCycles uint64) ([]uint64, error) {
	if err := Validate(tasks); err != nil {
		return nil, err
	}
	if frameCycles < 1 {
		return nil, fmt.Errorf("%w: frameCycles %d", ErrBadTaskSet, frameCycles)
	}
	res := make([]uint64, len(tasks))
	for i, ti := range tasks {
		deadline := uint64(ti.Period) * frameCycles
		r := ti.WCET
		for iter := 0; iter < 1000; iter++ {
			next := ti.WCET
			for j, tj := range tasks {
				if j == i || tj.Priority >= ti.Priority {
					continue
				}
				tjPeriod := uint64(tj.Period) * frameCycles
				n := (r + tjPeriod - 1) / tjPeriod // ceil
				next += n * tj.WCET
			}
			if next == r {
				break
			}
			r = next
			if r > deadline {
				return nil, fmt.Errorf("sched: task %q unschedulable (R=%d > D=%d)",
					ti.Name, r, deadline)
			}
		}
		res[i] = r
	}
	return res, nil
}

// Utilization returns sum(C_i / T_i) with periods in frames of
// frameCycles cycles.
func Utilization(tasks []Task, frameCycles uint64) (float64, error) {
	if err := Validate(tasks); err != nil {
		return 0, err
	}
	if frameCycles < 1 {
		return 0, fmt.Errorf("%w: frameCycles %d", ErrBadTaskSet, frameCycles)
	}
	u := 0.0
	for _, t := range tasks {
		u += float64(t.WCET) / (float64(t.Period) * float64(frameCycles))
	}
	return u, nil
}
