// Package isa defines the minimal SPARC-V8-flavoured instruction set
// executed by the simulated LEON3-class cores: a 32-register integer
// file, a 32-register floating-point file, loads/stores, branches and
// the FPU operations whose jitter the paper controls (FDIV, FSQRT).
//
// The package provides three layers:
//
//   - the instruction representation (Instr) and register model,
//   - a Builder, i.e. a tiny structured assembler with labels used by
//     the workload packages to write programs in Go,
//   - a functional interpreter (Machine) that executes programs
//     architecturally and emits one Event per retired instruction for
//     the timing model in internal/cpu.
//
// The interpreter is deliberately split from timing: architectural
// results depend only on the program and its inputs, while cycle counts
// depend on the platform configuration (caches, TLBs, FPU mode). This
// mirrors the real measurement setup, where the same TVCA binary runs on
// the deterministic and the time-randomized build of the processor.
package isa

import (
	"errors"
	"fmt"
)

// Reg names an integer register r0..r31. r0 is hardwired to zero, as in
// SPARC.
type Reg uint8

// FReg names a floating-point register f0..f31.
type FReg uint8

// NumRegs is the size of each register file.
const NumRegs = 32

// Op is an instruction opcode.
type Op uint8

// The instruction set. Integer ALU ops have fixed latency (jitterless in
// the paper's terminology); IMUL/IDIV have longer but fixed latencies;
// loads/stores exercise DL1/DTLB; FDIV/FSQRT are the jittery FPU ops.
const (
	OpNop Op = iota
	OpHalt

	// Integer ALU, register-register and register-immediate.
	OpAdd
	OpAddi
	OpSub
	OpSubi
	OpAnd
	OpAndi
	OpOr
	OpOri
	OpXor
	OpXori
	OpSll // shift left logical by immediate
	OpSrl // shift right logical by immediate
	OpMul
	OpDiv // signed divide; divide by zero traps (returns error)

	// Memory. Effective address = [base] + offset. Word-sized (4 bytes)
	// integer accesses, double-word (8 byte) FP accesses.
	OpLd  // rd = mem32[rs1 + imm]
	OpSt  // mem32[rs1 + imm] = rs2
	OpFld // fd = mem64[rs1 + imm]
	OpFst // mem64[rs1 + imm] = fs2

	// Control flow. Branches compare two integer registers.
	OpBeq
	OpBne
	OpBlt  // signed <
	OpBge  // signed >=
	OpJmp  // unconditional, pc-relative via target index
	OpCall // jumps to target, saves return in rd
	OpRet  // jumps to [rs1]

	// Floating point.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFcmp // rd = -1/0/1 for fs1 <,=,> fs2 (integer result)
	OpFmov // fd = fs1
	OpFcvt // fd = float64(rs1) — integer to float conversion
	OpFtoi // rd = int32(fs1)
)

var opNames = map[Op]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpAddi: "addi", OpSub: "sub", OpSubi: "subi",
	OpAnd: "and", OpAndi: "andi", OpOr: "or", OpOri: "ori",
	OpXor: "xor", OpXori: "xori", OpSll: "sll", OpSrl: "srl",
	OpMul: "mul", OpDiv: "div",
	OpLd: "ld", OpSt: "st", OpFld: "fld", OpFst: "fst",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul",
	OpFdiv: "fdiv", OpFsqrt: "fsqrt", OpFcmp: "fcmp",
	OpFmov: "fmov", OpFcvt: "fcvt", OpFtoi: "ftoi",
}

// String returns the mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class partitions opcodes by the pipeline resource they exercise; the
// timing model dispatches on it.
type Class uint8

// Instruction classes as seen by the timing model.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassFPAdd // covers fadd/fsub/fcmp/fmov/fcvt/ftoi
	ClassFPMul
	ClassFPDiv
	ClassFPSqrt
	ClassHalt
)

var classNames = map[Class]string{
	ClassNop: "nop", ClassIntALU: "ialu", ClassIntMul: "imul",
	ClassIntDiv: "idiv", ClassLoad: "load", ClassStore: "store",
	ClassBranch: "branch", ClassFPAdd: "fpadd", ClassFPMul: "fpmul",
	ClassFPDiv: "fpdiv", ClassFPSqrt: "fpsqrt", ClassHalt: "halt",
}

// String names the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf maps an opcode to its timing class.
func ClassOf(op Op) Class {
	switch op {
	case OpNop:
		return ClassNop
	case OpHalt:
		return ClassHalt
	case OpMul:
		return ClassIntMul
	case OpDiv:
		return ClassIntDiv
	case OpLd, OpFld:
		return ClassLoad
	case OpSt, OpFst:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall, OpRet:
		return ClassBranch
	case OpFadd, OpFsub, OpFcmp, OpFmov, OpFcvt, OpFtoi:
		return ClassFPAdd
	case OpFmul:
		return ClassFPMul
	case OpFdiv:
		return ClassFPDiv
	case OpFsqrt:
		return ClassFPSqrt
	default:
		return ClassIntALU
	}
}

// Instr is one decoded instruction. Fields are interpreted per opcode;
// unused fields are zero. Target is an instruction index within the
// program (the builder resolves labels to indices).
type Instr struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Fd     FReg
	Fs1    FReg
	Fs2    FReg
	Imm    int32
	Target int32
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt:
		return i.Op.String()
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpDiv:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpAddi, OpSubi, OpAndi, OpOri, OpXori, OpSll, OpSrl:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpLd:
		return fmt.Sprintf("ld r%d, [r%d%+d]", i.Rd, i.Rs1, i.Imm)
	case OpSt:
		return fmt.Sprintf("st [r%d%+d], r%d", i.Rs1, i.Imm, i.Rs2)
	case OpFld:
		return fmt.Sprintf("fld f%d, [r%d%+d]", i.Fd, i.Rs1, i.Imm)
	case OpFst:
		return fmt.Sprintf("fst [r%d%+d], f%d", i.Rs1, i.Imm, i.Fs2)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op, i.Rs1, i.Rs2, i.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", i.Target)
	case OpCall:
		return fmt.Sprintf("call @%d, r%d", i.Target, i.Rd)
	case OpRet:
		return fmt.Sprintf("ret [r%d]", i.Rs1)
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		return fmt.Sprintf("%s f%d, f%d, f%d", i.Op, i.Fd, i.Fs1, i.Fs2)
	case OpFsqrt, OpFmov:
		return fmt.Sprintf("%s f%d, f%d", i.Op, i.Fd, i.Fs1)
	case OpFcmp:
		return fmt.Sprintf("fcmp r%d, f%d, f%d", i.Rd, i.Fs1, i.Fs2)
	case OpFcvt:
		return fmt.Sprintf("fcvt f%d, r%d", i.Fd, i.Rs1)
	case OpFtoi:
		return fmt.Sprintf("ftoi r%d, f%d", i.Rd, i.Fs1)
	default:
		return i.Op.String()
	}
}

// InstrBytes is the architectural size of one instruction; PCs advance
// by this much, so consecutive instructions fall in the same or adjacent
// cache lines exactly as on the real machine.
const InstrBytes = 4

// Program is a fully resolved instruction sequence plus its code base
// address (where the text segment is linked). Symbols maps the
// builder's labels to instruction indices — the program's symbol
// table, used e.g. to attribute cycles to tasks by PC range.
type Program struct {
	Name     string
	CodeBase uint64
	Code     []Instr
	Symbols  map[string]int32
}

// SymbolPC returns the memory address of label name and whether it
// exists.
func (p *Program) SymbolPC(name string) (uint64, bool) {
	idx, ok := p.Symbols[name]
	if !ok {
		return 0, false
	}
	return p.PCOf(int(idx)), true
}

// Span names the PC range [Start, End) — e.g. one task's body within a
// program, as derived from its symbols.
type Span struct {
	Name       string
	Start, End uint64
}

// PCOf returns the memory address of instruction index i.
func (p *Program) PCOf(i int) uint64 {
	return p.CodeBase + uint64(i)*InstrBytes
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// Errors returned by the interpreter.
var (
	ErrDivideByZero   = errors.New("isa: integer divide by zero")
	ErrPCOutOfRange   = errors.New("isa: PC out of range")
	ErrUnalignedAddr  = errors.New("isa: unaligned memory access")
	ErrStepLimit      = errors.New("isa: step limit exceeded (livelock guard)")
	ErrCancelled      = errors.New("isa: execution cancelled")
	ErrUnknownOpcode  = errors.New("isa: unknown opcode")
	ErrMisalignedBase = errors.New("isa: code base must be 4-byte aligned")
)
