package isa

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Event describes one retired instruction to the timing model: where it
// was fetched from, what pipeline resource it uses, which data address
// it touched (loads/stores) and the FPU operand values (FDIV/FSQRT,
// whose latency is operand-dependent on the deterministic platform).
type Event struct {
	PC    uint64
	Class Class
	Addr  uint64  // effective address for loads/stores, else 0
	Size  uint8   // access size in bytes for loads/stores, else 0
	FOp1  float64 // first FPU operand (dividend / sqrt argument)
	FOp2  float64 // second FPU operand (divisor)
	Taken bool    // branch outcome
}

// EventSink consumes the per-retired-instruction event stream. The
// timing model (cpu.Core) implements it directly; passing the interface
// instead of a bound-method closure keeps the steady-state run loop
// allocation-free.
type EventSink interface {
	Consume(Event)
}

// Memory is the byte-addressable data memory shared by architectural
// execution. It is sparse (4 KiB pages allocated on demand) so programs
// can scatter data segments across a 32-bit space without cost.
//
// A small direct-mapped page-pointer table (indexed by the low bits of
// the page number) lets accesses skip the map lookup even when a loop
// alternates between pages (e.g. a coefficient array and a history
// buffer); the aligned fast paths of the accessors are small enough to
// inline into the interpreter loop.
type Memory struct {
	pages map[uint64]*page
	tabPN [tabSlots]uint64
	tabP  [tabSlots]*page // nil until the slot's first resolution
}

const pageShift = 12
const pageSize = 1 << pageShift

// tabSlots sizes the page-pointer table; a working set of a few dozen
// pages direct-maps into 64 slots with few collisions.
const tabSlots = 64

type page [pageSize]byte

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// errUnaligned builds the unaligned-access error. It lives out of line
// so the accessors stay within the inlining budget: the hot path never
// pays for the fmt.Errorf machinery.
//
//go:noinline
func errUnaligned(op string, addr uint64) error {
	return fmt.Errorf("%w: %s at %#x", ErrUnalignedAddr, op, addr)
}

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	pn := addr >> pageShift
	h := pn & (tabSlots - 1)
	if p := m.tabP[h]; p != nil && m.tabPN[h] == pn {
		return p
	}
	p := m.pages[pn]
	if p == nil && alloc {
		p = new(page)
		m.pages[pn] = p
	}
	if p != nil {
		m.tabPN[h], m.tabP[h] = pn, p
	}
	return p
}

// Read32 loads an aligned 32-bit word.
func (m *Memory) Read32(addr uint64) (uint32, error) {
	pn := addr >> pageShift
	h := pn & (tabSlots - 1)
	if p := m.tabP[h]; addr&3 == 0 && p != nil && m.tabPN[h] == pn {
		off := addr & (pageSize - 1)
		return binary.LittleEndian.Uint32(p[off : off+4]), nil
	}
	return m.read32Slow(addr)
}

func (m *Memory) read32Slow(addr uint64) (uint32, error) {
	if addr&3 != 0 {
		return 0, errUnaligned("read32", addr)
	}
	p := m.pageFor(addr, false)
	if p == nil {
		return 0, nil
	}
	off := addr & (pageSize - 1)
	return binary.LittleEndian.Uint32(p[off : off+4]), nil
}

// Write32 stores an aligned 32-bit word.
func (m *Memory) Write32(addr uint64, v uint32) error {
	pn := addr >> pageShift
	h := pn & (tabSlots - 1)
	if p := m.tabP[h]; addr&3 == 0 && p != nil && m.tabPN[h] == pn {
		off := addr & (pageSize - 1)
		binary.LittleEndian.PutUint32(p[off:off+4], v)
		return nil
	}
	return m.write32Slow(addr, v)
}

func (m *Memory) write32Slow(addr uint64, v uint32) error {
	if addr&3 != 0 {
		return errUnaligned("write32", addr)
	}
	p := m.pageFor(addr, true)
	off := addr & (pageSize - 1)
	binary.LittleEndian.PutUint32(p[off:off+4], v)
	return nil
}

// Read64 loads an aligned 64-bit float.
func (m *Memory) Read64(addr uint64) (float64, error) {
	pn := addr >> pageShift
	h := pn & (tabSlots - 1)
	if p := m.tabP[h]; addr&7 == 0 && p != nil && m.tabPN[h] == pn {
		off := addr & (pageSize - 1)
		return math.Float64frombits(binary.LittleEndian.Uint64(p[off : off+8])), nil
	}
	return m.read64Slow(addr)
}

func (m *Memory) read64Slow(addr uint64) (float64, error) {
	if addr&7 != 0 {
		return 0, errUnaligned("read64", addr)
	}
	p := m.pageFor(addr, false)
	if p == nil {
		return 0, nil
	}
	off := addr & (pageSize - 1)
	return math.Float64frombits(binary.LittleEndian.Uint64(p[off : off+8])), nil
}

// Write64 stores an aligned 64-bit float.
func (m *Memory) Write64(addr uint64, v float64) error {
	pn := addr >> pageShift
	h := pn & (tabSlots - 1)
	if p := m.tabP[h]; addr&7 == 0 && p != nil && m.tabPN[h] == pn {
		off := addr & (pageSize - 1)
		binary.LittleEndian.PutUint64(p[off:off+8], math.Float64bits(v))
		return nil
	}
	return m.write64Slow(addr, v)
}

func (m *Memory) write64Slow(addr uint64, v float64) error {
	if addr&7 != 0 {
		return errUnaligned("write64", addr)
	}
	p := m.pageFor(addr, true)
	off := addr & (pageSize - 1)
	binary.LittleEndian.PutUint64(p[off:off+8], math.Float64bits(v))
	return nil
}

// Reset zeroes the memory. Allocated pages are cleared in place and kept
// for reuse — observable contents are identical to a fresh Memory (all
// zeroes), but a reloaded run does not re-pay the page allocations.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = page{}
	}
}

// Machine executes a Program architecturally. A fresh Machine (or Reset)
// corresponds to the paper's measurement protocol step "reload the
// executable": registers cleared, PC at entry.
type Machine struct {
	Prog *Program
	Mem  *Memory

	regs  [NumRegs]int32
	fregs [NumRegs]float64
	pc    int32
	steps uint64

	// classes caches ClassOf per instruction index (decode-once): the
	// interpreter loop indexes it instead of re-dispatching the opcode
	// switch for every retired instruction.
	classes []Class

	// StepLimit guards against runaway loops in workload code; 0 means
	// the default of 100M instructions.
	StepLimit uint64
	// Cancel, when non-nil, is polled every 1024 retired instructions;
	// Run returns ErrCancelled once it reports true. Co-runner cores in
	// the multicore co-simulation use it to stop when the measured core
	// finishes.
	Cancel func() bool
}

// NewMachine binds a program to a memory.
func NewMachine(prog *Program, mem *Memory) *Machine {
	classes := make([]Class, len(prog.Code))
	for i := range prog.Code {
		classes[i] = ClassOf(prog.Code[i].Op)
	}
	return &Machine{Prog: prog, Mem: mem, classes: classes}
}

// Reset clears registers and rewinds the PC; memory is left untouched
// (workloads re-initialize their data segments explicitly, mirroring a
// binary reload that rewrites .data).
func (m *Machine) Reset() {
	m.regs = [NumRegs]int32{}
	m.fregs = [NumRegs]float64{}
	m.pc = 0
	m.steps = 0
}

// Reg returns the value of integer register r.
func (m *Machine) Reg(r Reg) int32 { return m.regs[r] }

// SetReg writes integer register r (writes to r0 are discarded).
func (m *Machine) SetReg(r Reg, v int32) {
	if r != 0 {
		m.regs[r] = v
	}
}

// FRegVal returns the value of FP register f.
func (m *Machine) FRegVal(f FReg) float64 { return m.fregs[f] }

// SetFReg writes FP register f.
func (m *Machine) SetFReg(f FReg, v float64) { m.fregs[f] = v }

// Steps returns the number of retired instructions since Reset.
func (m *Machine) Steps() uint64 { return m.steps }

// funcSink adapts a plain function to EventSink for the legacy Run
// signature.
type funcSink struct{ f func(Event) }

func (s funcSink) Consume(ev Event) { s.f(ev) }

// Run executes until Halt, feeding one Event per retired instruction to
// sink. sink may be nil for pure architectural runs. Returns the number
// of retired instructions.
func (m *Machine) Run(sink func(Event)) (uint64, error) {
	if sink == nil {
		return m.RunSink(nil)
	}
	return m.RunSink(funcSink{sink})
}

// RunSink is Run with an interface sink: the steady-state path used by
// the timing model, free of the per-run closure allocation.
func (m *Machine) RunSink(sink EventSink) (uint64, error) {
	limit := m.StepLimit
	if limit == 0 {
		limit = 100_000_000
	}
	code := m.Prog.Code
	classes := m.classes
	if len(classes) != len(code) {
		// The machine was constructed as a literal (tests); decode now.
		classes = make([]Class, len(code))
		for i := range code {
			classes[i] = ClassOf(code[i].Op)
		}
		m.classes = classes
	}
	classes = classes[:len(code)] // bounds hint: classes[pc] is in range iff code[pc] is
	base := m.Prog.CodeBase
	n := int32(len(code))
	// pc lives in a local for the duration of the loop; m.pc is synced at
	// every exit. m.steps stays a field — fault-injection sinks read
	// Steps() between Consume calls.
	pc := m.pc
	for {
		if pc < 0 || pc >= n {
			m.pc = pc
			return m.steps, fmt.Errorf("%w: pc=%d len=%d", ErrPCOutOfRange, pc, n)
		}
		if m.steps >= limit {
			m.pc = pc
			return m.steps, fmt.Errorf("%w: %d", ErrStepLimit, limit)
		}
		if m.Cancel != nil && m.steps&1023 == 0 && m.Cancel() {
			m.pc = pc
			return m.steps, ErrCancelled
		}
		ins := &code[pc]
		ev := Event{PC: base + uint64(pc)*InstrBytes, Class: classes[pc]}
		next := pc + 1
		switch ins.Op {
		case OpNop:
		case OpHalt:
			m.steps++
			if sink != nil {
				sink.Consume(ev)
			}
			m.pc = pc
			return m.steps, nil
		case OpAdd:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]+m.regs[ins.Rs2])
		case OpAddi:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]+ins.Imm)
		case OpSub:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]-m.regs[ins.Rs2])
		case OpSubi:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]-ins.Imm)
		case OpAnd:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]&m.regs[ins.Rs2])
		case OpAndi:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]&ins.Imm)
		case OpOr:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]|m.regs[ins.Rs2])
		case OpOri:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]|ins.Imm)
		case OpXor:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]^m.regs[ins.Rs2])
		case OpXori:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]^ins.Imm)
		case OpSll:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]<<uint(ins.Imm&31))
		case OpSrl:
			m.SetReg(ins.Rd, int32(uint32(m.regs[ins.Rs1])>>uint(ins.Imm&31)))
		case OpMul:
			m.SetReg(ins.Rd, m.regs[ins.Rs1]*m.regs[ins.Rs2])
		case OpDiv:
			if m.regs[ins.Rs2] == 0 {
				m.pc = pc
				return m.steps, fmt.Errorf("%w at pc=%d", ErrDivideByZero, pc)
			}
			m.SetReg(ins.Rd, m.regs[ins.Rs1]/m.regs[ins.Rs2])
		case OpLd:
			addr := uint64(uint32(m.regs[ins.Rs1] + ins.Imm))
			v, err := m.Mem.Read32(addr)
			if err != nil {
				m.pc = pc
				return m.steps, fmt.Errorf("pc=%d: %w", pc, err)
			}
			m.SetReg(ins.Rd, int32(v))
			ev.Addr, ev.Size = addr, 4
		case OpSt:
			addr := uint64(uint32(m.regs[ins.Rs1] + ins.Imm))
			if err := m.Mem.Write32(addr, uint32(m.regs[ins.Rs2])); err != nil {
				m.pc = pc
				return m.steps, fmt.Errorf("pc=%d: %w", pc, err)
			}
			ev.Addr, ev.Size = addr, 4
		case OpFld:
			addr := uint64(uint32(m.regs[ins.Rs1] + ins.Imm))
			v, err := m.Mem.Read64(addr)
			if err != nil {
				m.pc = pc
				return m.steps, fmt.Errorf("pc=%d: %w", pc, err)
			}
			m.fregs[ins.Fd] = v
			ev.Addr, ev.Size = addr, 8
		case OpFst:
			addr := uint64(uint32(m.regs[ins.Rs1] + ins.Imm))
			if err := m.Mem.Write64(addr, m.fregs[ins.Fs2]); err != nil {
				m.pc = pc
				return m.steps, fmt.Errorf("pc=%d: %w", pc, err)
			}
			ev.Addr, ev.Size = addr, 8
		case OpBeq:
			if m.regs[ins.Rs1] == m.regs[ins.Rs2] {
				next, ev.Taken = ins.Target, true
			}
		case OpBne:
			if m.regs[ins.Rs1] != m.regs[ins.Rs2] {
				next, ev.Taken = ins.Target, true
			}
		case OpBlt:
			if m.regs[ins.Rs1] < m.regs[ins.Rs2] {
				next, ev.Taken = ins.Target, true
			}
		case OpBge:
			if m.regs[ins.Rs1] >= m.regs[ins.Rs2] {
				next, ev.Taken = ins.Target, true
			}
		case OpJmp:
			next, ev.Taken = ins.Target, true
		case OpCall:
			m.SetReg(ins.Rd, pc+1)
			next, ev.Taken = ins.Target, true
		case OpRet:
			next, ev.Taken = m.regs[ins.Rs1], true
		case OpFadd:
			m.fregs[ins.Fd] = m.fregs[ins.Fs1] + m.fregs[ins.Fs2]
		case OpFsub:
			m.fregs[ins.Fd] = m.fregs[ins.Fs1] - m.fregs[ins.Fs2]
		case OpFmul:
			m.fregs[ins.Fd] = m.fregs[ins.Fs1] * m.fregs[ins.Fs2]
		case OpFdiv:
			ev.FOp1, ev.FOp2 = m.fregs[ins.Fs1], m.fregs[ins.Fs2]
			m.fregs[ins.Fd] = m.fregs[ins.Fs1] / m.fregs[ins.Fs2]
		case OpFsqrt:
			ev.FOp1 = m.fregs[ins.Fs1]
			m.fregs[ins.Fd] = math.Sqrt(m.fregs[ins.Fs1])
		case OpFcmp:
			a, b := m.fregs[ins.Fs1], m.fregs[ins.Fs2]
			switch {
			case a < b:
				m.SetReg(ins.Rd, -1)
			case a > b:
				m.SetReg(ins.Rd, 1)
			default:
				m.SetReg(ins.Rd, 0)
			}
		case OpFmov:
			m.fregs[ins.Fd] = m.fregs[ins.Fs1]
		case OpFcvt:
			m.fregs[ins.Fd] = float64(m.regs[ins.Rs1])
		case OpFtoi:
			m.SetReg(ins.Rd, int32(m.fregs[ins.Fs1]))
		default:
			m.pc = pc
			return m.steps, fmt.Errorf("%w: %v at pc=%d", ErrUnknownOpcode, ins.Op, pc)
		}
		m.steps++
		if sink != nil {
			sink.Consume(ev)
		}
		pc = next
	}
}
