package isa

import (
	"fmt"
)

// Builder is a small structured assembler: workload packages use it to
// write programs in Go with symbolic labels, which the builder resolves
// to instruction indices at Build time.
type Builder struct {
	name     string
	codeBase uint64
	code     []Instr
	labels   map[string]int32
	fixups   []fixup
	errs     []error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder starts a program named name whose text segment is linked at
// codeBase. The base must be 4-byte aligned.
func NewBuilder(name string, codeBase uint64) *Builder {
	b := &Builder{name: name, codeBase: codeBase, labels: make(map[string]int32)}
	if codeBase%InstrBytes != 0 {
		b.errs = append(b.errs, fmt.Errorf("%w: %#x", ErrMisalignedBase, codeBase))
	}
	return b
}

// Label binds name to the address of the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = int32(len(b.code))
	return b
}

func (b *Builder) emit(i Instr) *Builder {
	b.code = append(b.code, i)
	return b
}

func (b *Builder) emitBranch(i Instr, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instr: len(b.code), label: label})
	return b.emit(i)
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Halt emits a halt; executing it ends the run.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Subi emits rd = rs1 - imm.
func (b *Builder) Subi(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpSubi, Rd: rd, Rs1: rs1, Imm: imm})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpAndi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpOr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpOri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpXor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpXori, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sll emits rd = rs1 << imm.
func (b *Builder) Sll(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpSll, Rd: rd, Rs1: rs1, Imm: imm})
}

// Srl emits rd = rs1 >> imm (logical).
func (b *Builder) Srl(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpSrl, Rd: rd, Rs1: rs1, Imm: imm})
}

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd = rs1 / rs2 (signed).
func (b *Builder) Div(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Li loads a 32-bit immediate into rd (assembler idiom for addi rd,r0,imm).
func (b *Builder) Li(rd Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpAddi, Rd: rd, Rs1: 0, Imm: imm})
}

// Mov copies rs1 to rd.
func (b *Builder) Mov(rd, rs1 Reg) *Builder {
	return b.emit(Instr{Op: OpAddi, Rd: rd, Rs1: rs1, Imm: 0})
}

// Ld emits rd = mem32[rs1 + imm].
func (b *Builder) Ld(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpLd, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits mem32[rs1 + imm] = rs2.
func (b *Builder) St(rs1 Reg, imm int32, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpSt, Rs1: rs1, Imm: imm, Rs2: rs2})
}

// Fld emits fd = mem64[rs1 + imm].
func (b *Builder) Fld(fd FReg, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: OpFld, Fd: fd, Rs1: rs1, Imm: imm})
}

// Fst emits mem64[rs1 + imm] = fs2.
func (b *Builder) Fst(rs1 Reg, imm int32, fs2 FReg) *Builder {
	return b.emit(Instr{Op: OpFst, Rs1: rs1, Imm: imm, Fs2: fs2})
}

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(Instr{Op: OpBeq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(Instr{Op: OpBne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt branches to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(Instr{Op: OpBlt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge branches to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(Instr{Op: OpBge, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp jumps unconditionally to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitBranch(Instr{Op: OpJmp}, label)
}

// Call jumps to label, leaving the return instruction index in rd.
func (b *Builder) Call(label string, rd Reg) *Builder {
	return b.emitBranch(Instr{Op: OpCall, Rd: rd}, label)
}

// Ret jumps to the instruction index held in rs1.
func (b *Builder) Ret(rs1 Reg) *Builder {
	return b.emit(Instr{Op: OpRet, Rs1: rs1})
}

// Fadd emits fd = fs1 + fs2.
func (b *Builder) Fadd(fd, fs1, fs2 FReg) *Builder {
	return b.emit(Instr{Op: OpFadd, Fd: fd, Fs1: fs1, Fs2: fs2})
}

// Fsub emits fd = fs1 - fs2.
func (b *Builder) Fsub(fd, fs1, fs2 FReg) *Builder {
	return b.emit(Instr{Op: OpFsub, Fd: fd, Fs1: fs1, Fs2: fs2})
}

// Fmul emits fd = fs1 * fs2.
func (b *Builder) Fmul(fd, fs1, fs2 FReg) *Builder {
	return b.emit(Instr{Op: OpFmul, Fd: fd, Fs1: fs1, Fs2: fs2})
}

// Fdiv emits fd = fs1 / fs2 — one of the two jittery FPU operations.
func (b *Builder) Fdiv(fd, fs1, fs2 FReg) *Builder {
	return b.emit(Instr{Op: OpFdiv, Fd: fd, Fs1: fs1, Fs2: fs2})
}

// Fsqrt emits fd = sqrt(fs1) — the other jittery FPU operation.
func (b *Builder) Fsqrt(fd, fs1 FReg) *Builder {
	return b.emit(Instr{Op: OpFsqrt, Fd: fd, Fs1: fs1})
}

// Fcmp emits rd = sign(fs1 - fs2) as -1/0/+1.
func (b *Builder) Fcmp(rd Reg, fs1, fs2 FReg) *Builder {
	return b.emit(Instr{Op: OpFcmp, Rd: rd, Fs1: fs1, Fs2: fs2})
}

// Fmov copies fs1 to fd.
func (b *Builder) Fmov(fd, fs1 FReg) *Builder {
	return b.emit(Instr{Op: OpFmov, Fd: fd, Fs1: fs1})
}

// Fcvt converts the integer in rs1 to float64 in fd.
func (b *Builder) Fcvt(fd FReg, rs1 Reg) *Builder {
	return b.emit(Instr{Op: OpFcvt, Fd: fd, Rs1: rs1})
}

// Ftoi truncates fs1 into the integer register rd.
func (b *Builder) Ftoi(rd Reg, fs1 FReg) *Builder {
	return b.emit(Instr{Op: OpFtoi, Rd: rd, Fs1: fs1})
}

// Build resolves labels and returns the finished program. It fails on
// unresolved or duplicate labels, or an empty body.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.code) == 0 {
		return nil, fmt.Errorf("isa: program %q is empty", b.name)
	}
	code := append([]Instr(nil), b.code...)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q in program %q", f.label, b.name)
		}
		code[f.instr].Target = target
	}
	symbols := make(map[string]int32, len(b.labels))
	for name, idx := range b.labels {
		symbols[name] = idx
	}
	return &Program{Name: b.name, CodeBase: b.codeBase, Code: code, Symbols: symbols}, nil
}
