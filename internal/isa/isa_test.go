package isa

import (
	"errors"
	"strings"
	"testing"
)

func mustBuild(t *testing.T, b *Builder) *Program {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runProgram(t *testing.T, p *Program) (*Machine, []Event) {
	t.Helper()
	m := NewMachine(p, NewMemory())
	var evs []Event
	if _, err := m.Run(func(e Event) { evs = append(evs, e) }); err != nil {
		t.Fatal(err)
	}
	return m, evs
}

func TestArithmetic(t *testing.T) {
	b := NewBuilder("arith", 0x1000)
	b.Li(1, 6).Li(2, 7)
	b.Mul(3, 1, 2)   // 42
	b.Add(4, 3, 1)   // 48
	b.Sub(5, 4, 2)   // 41
	b.Div(6, 3, 2)   // 6
	b.Andi(7, 3, 15) // 42 & 15 = 10
	b.Ori(8, 7, 1)   // 11
	b.Xori(9, 8, 2)  // 9
	b.Sll(10, 1, 3)  // 48
	b.Srl(11, 10, 2) // 12
	b.Halt()
	m, _ := runProgram(t, mustBuild(t, b))
	want := map[Reg]int32{3: 42, 4: 48, 5: 41, 6: 6, 7: 10, 8: 11, 9: 9, 10: 48, 11: 12}
	for r, v := range want {
		if got := m.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	b := NewBuilder("r0", 0)
	b.Li(0, 99).Li(1, 5).Add(0, 1, 1).Halt()
	m, _ := runProgram(t, mustBuild(t, b))
	if m.Reg(0) != 0 {
		t.Errorf("r0 = %d, want 0", m.Reg(0))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := NewBuilder("mem", 0)
	b.Li(1, 0x2000) // base
	b.Li(2, 1234)
	b.St(1, 8, 2) // mem[0x2008] = 1234
	b.Ld(3, 1, 8) // r3 = mem[0x2008]
	b.Halt()
	m, evs := runProgram(t, mustBuild(t, b))
	if m.Reg(3) != 1234 {
		t.Errorf("r3 = %d, want 1234", m.Reg(3))
	}
	// Events: store then load with same address.
	var st, ld *Event
	for i := range evs {
		switch evs[i].Class {
		case ClassStore:
			st = &evs[i]
		case ClassLoad:
			ld = &evs[i]
		}
	}
	if st == nil || ld == nil {
		t.Fatal("missing load/store events")
	}
	if st.Addr != 0x2008 || ld.Addr != 0x2008 {
		t.Errorf("addrs %#x %#x, want 0x2008", st.Addr, ld.Addr)
	}
	if st.Size != 4 || ld.Size != 4 {
		t.Errorf("sizes %d %d, want 4", st.Size, ld.Size)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	b := NewBuilder("float", 0)
	b.Li(1, 0x3000)
	b.Li(2, 9)
	b.Fcvt(1, 2)   // f1 = 9.0
	b.Fsqrt(2, 1)  // f2 = 3.0
	b.Fst(1, 0, 2) // mem[0x3000] = 3.0
	b.Fld(3, 1, 0) // f3 = 3.0
	b.Li(3, 2)
	b.Fcvt(4, 3)    // f4 = 2.0
	b.Fdiv(5, 3, 4) // f5 = 1.5
	b.Fmul(6, 5, 4) // f6 = 3.0
	b.Fadd(7, 5, 5) // f7 = 3.0
	b.Fsub(8, 7, 5) // f8 = 1.5
	b.Fcmp(4, 7, 8) // r4 = 1 (3.0 > 1.5)
	b.Ftoi(5, 5)    // r5 = 1
	b.Halt()
	m, evs := runProgram(t, mustBuild(t, b))
	if got := m.FRegVal(2); got != 3.0 {
		t.Errorf("f2 = %v, want 3", got)
	}
	if got := m.FRegVal(5); got != 1.5 {
		t.Errorf("f5 = %v, want 1.5", got)
	}
	if m.Reg(4) != 1 {
		t.Errorf("fcmp r4 = %d, want 1", m.Reg(4))
	}
	if m.Reg(5) != 1 {
		t.Errorf("ftoi r5 = %d, want 1", m.Reg(5))
	}
	// FDIV and FSQRT events must carry operand values for the FPU
	// latency model.
	var sawDiv, sawSqrt bool
	for _, e := range evs {
		if e.Class == ClassFPDiv {
			sawDiv = true
			if e.FOp1 != 3.0 || e.FOp2 != 2.0 {
				t.Errorf("fdiv operands %v %v, want 3 2", e.FOp1, e.FOp2)
			}
		}
		if e.Class == ClassFPSqrt {
			sawSqrt = true
			if e.FOp1 != 9.0 {
				t.Errorf("fsqrt operand %v, want 9", e.FOp1)
			}
		}
	}
	if !sawDiv || !sawSqrt {
		t.Error("missing FPU events")
	}
}

func TestLoopSumsFirstN(t *testing.T) {
	// sum 1..10 via blt loop.
	b := NewBuilder("loop", 0)
	b.Li(1, 0)  // sum
	b.Li(2, 1)  // i
	b.Li(3, 11) // bound
	b.Label("loop")
	b.Add(1, 1, 2)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Halt()
	m, evs := runProgram(t, mustBuild(t, b))
	if m.Reg(1) != 55 {
		t.Errorf("sum = %d, want 55", m.Reg(1))
	}
	// Branch events: 9 taken + 1 not taken.
	taken, notTaken := 0, 0
	for _, e := range evs {
		if e.Class == ClassBranch {
			if e.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 9 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 9/1", taken, notTaken)
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("call", 0)
	b.Li(1, 5)
	b.Call("double", 30) // r30 = link register
	b.Mov(3, 2)
	b.Halt()
	b.Label("double")
	b.Add(2, 1, 1)
	b.Ret(30)
	m, _ := runProgram(t, mustBuild(t, b))
	if m.Reg(3) != 10 {
		t.Errorf("r3 = %d, want 10", m.Reg(3))
	}
}

func TestBranchVariants(t *testing.T) {
	// beq/bne/bge coverage.
	b := NewBuilder("br", 0)
	b.Li(1, 5).Li(2, 5).Li(3, 0)
	b.Beq(1, 2, "eq")
	b.Li(3, -1) // skipped
	b.Label("eq")
	b.Addi(3, 3, 1) // r3 = 1
	b.Bne(1, 2, "bad")
	b.Addi(3, 3, 1) // r3 = 2
	b.Bge(1, 2, "ge")
	b.Li(3, -1)
	b.Label("ge")
	b.Addi(3, 3, 1) // r3 = 3
	b.Halt()
	b.Label("bad")
	b.Li(3, -100)
	b.Halt()
	m, _ := runProgram(t, mustBuild(t, b))
	if m.Reg(3) != 3 {
		t.Errorf("r3 = %d, want 3", m.Reg(3))
	}
}

func TestDivideByZero(t *testing.T) {
	b := NewBuilder("divzero", 0)
	b.Li(1, 4).Li(2, 0).Div(3, 1, 2).Halt()
	m := NewMachine(mustBuild(t, b), NewMemory())
	if _, err := m.Run(nil); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("err = %v, want ErrDivideByZero", err)
	}
}

func TestStepLimit(t *testing.T) {
	b := NewBuilder("infinite", 0)
	b.Label("l").Jmp("l")
	m := NewMachine(mustBuild(t, b), NewMemory())
	m.StepLimit = 1000
	if _, err := m.Run(nil); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestPCOutOfRange(t *testing.T) {
	// Program without halt runs off the end.
	b := NewBuilder("offend", 0)
	b.Nop()
	m := NewMachine(mustBuild(t, b), NewMemory())
	if _, err := m.Run(nil); !errors.Is(err, ErrPCOutOfRange) {
		t.Errorf("err = %v, want ErrPCOutOfRange", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("empty", 0).Build(); err == nil {
		t.Error("empty program accepted")
	}
	b := NewBuilder("undef", 0)
	b.Jmp("nowhere").Halt()
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted")
	}
	b = NewBuilder("dup", 0)
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewBuilder("misaligned", 2).Halt().Build(); !errors.Is(err, ErrMisalignedBase) {
		t.Errorf("misaligned base err = %v", err)
	}
}

func TestPCAddresses(t *testing.T) {
	b := NewBuilder("pcs", 0x4000)
	b.Nop().Nop().Halt()
	p := mustBuild(t, b)
	if p.PCOf(0) != 0x4000 || p.PCOf(2) != 0x4008 {
		t.Errorf("PCs %#x %#x", p.PCOf(0), p.PCOf(2))
	}
	_, evs := runProgram(t, p)
	if evs[0].PC != 0x4000 || evs[1].PC != 0x4004 || evs[2].PC != 0x4008 {
		t.Errorf("event PCs: %#x %#x %#x", evs[0].PC, evs[1].PC, evs[2].PC)
	}
}

func TestMachineResetRerunsDeterministically(t *testing.T) {
	b := NewBuilder("rerun", 0)
	b.Li(1, 3).Li(2, 4).Mul(3, 1, 2).Halt()
	p := mustBuild(t, b)
	m := NewMachine(p, NewMemory())
	n1, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	r1 := m.Reg(3)
	m.Reset()
	n2, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || m.Reg(3) != r1 {
		t.Errorf("rerun differs: steps %d/%d r3 %d/%d", n1, n2, r1, m.Reg(3))
	}
}

func TestMemoryAlignment(t *testing.T) {
	mem := NewMemory()
	if err := mem.Write32(2, 1); err == nil {
		t.Error("unaligned write32 accepted")
	}
	if _, err := mem.Read32(1); err == nil {
		t.Error("unaligned read32 accepted")
	}
	if err := mem.Write64(4, 1); err == nil {
		t.Error("unaligned write64 accepted")
	}
	if _, err := mem.Read64(12); err == nil {
		t.Error("unaligned read64 accepted")
	}
}

func TestMemoryZeroFill(t *testing.T) {
	mem := NewMemory()
	v, err := mem.Read32(0x123400)
	if err != nil || v != 0 {
		t.Errorf("untouched read = %v, %v", v, err)
	}
	f, err := mem.Read64(0x9000)
	if err != nil || f != 0 {
		t.Errorf("untouched read64 = %v, %v", f, err)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	mem := NewMemory()
	// Last word of one page and first of the next.
	if err := mem.Write32(pageSize-4, 0xAABBCCDD); err != nil {
		t.Fatal(err)
	}
	if err := mem.Write32(pageSize, 0x11223344); err != nil {
		t.Fatal(err)
	}
	a, _ := mem.Read32(pageSize - 4)
	b, _ := mem.Read32(pageSize)
	if a != 0xAABBCCDD || b != 0x11223344 {
		t.Errorf("cross page: %#x %#x", a, b)
	}
}

func TestMemoryReset(t *testing.T) {
	mem := NewMemory()
	mem.Write32(0x100, 7)
	mem.Reset()
	if v, _ := mem.Read32(0x100); v != 0 {
		t.Errorf("after reset: %d", v)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddi, Rd: 1, Rs1: 0, Imm: -4}, "addi r1, r0, -4"},
		{Instr{Op: OpLd, Rd: 2, Rs1: 3, Imm: 8}, "ld r2, [r3+8]"},
		{Instr{Op: OpSt, Rs1: 3, Imm: -8, Rs2: 2}, "st [r3-8], r2"},
		{Instr{Op: OpBeq, Rs1: 1, Rs2: 2, Target: 7}, "beq r1, r2, @7"},
		{Instr{Op: OpFdiv, Fd: 1, Fs1: 2, Fs2: 3}, "fdiv f1, f2, f3"},
		{Instr{Op: OpFsqrt, Fd: 1, Fs1: 2}, "fsqrt f1, f2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestClassOfCoverage(t *testing.T) {
	cases := map[Op]Class{
		OpNop: ClassNop, OpHalt: ClassHalt, OpAdd: ClassIntALU,
		OpMul: ClassIntMul, OpDiv: ClassIntDiv, OpLd: ClassLoad,
		OpFld: ClassLoad, OpSt: ClassStore, OpFst: ClassStore,
		OpBeq: ClassBranch, OpJmp: ClassBranch, OpCall: ClassBranch,
		OpRet: ClassBranch, OpFadd: ClassFPAdd, OpFcmp: ClassFPAdd,
		OpFmul: ClassFPMul, OpFdiv: ClassFPDiv, OpFsqrt: ClassFPSqrt,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestOpAndClassStrings(t *testing.T) {
	if OpFdiv.String() != "fdiv" {
		t.Error("OpFdiv name")
	}
	if !strings.HasPrefix(Op(200).String(), "op(") {
		t.Error("unknown op name")
	}
	if ClassFPSqrt.String() != "fpsqrt" {
		t.Error("class name")
	}
	if !strings.HasPrefix(Class(200).String(), "class(") {
		t.Error("unknown class name")
	}
}

func TestCancellation(t *testing.T) {
	b := NewBuilder("spin", 0)
	b.Label("l").Addi(1, 1, 1).Jmp("l")
	p := mustBuild(t, b)
	m := NewMachine(p, NewMemory())
	calls := 0
	m.Cancel = func() bool {
		calls++
		return calls > 3
	}
	_, err := m.Run(nil)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// Polled every 1024 steps: should stop shortly after the 4th poll.
	if m.Steps() > 5*1024 {
		t.Errorf("ran %d steps before cancelling", m.Steps())
	}
}

func TestCancelNeverTrueCompletesNormally(t *testing.T) {
	b := NewBuilder("short", 0)
	b.Li(1, 7).Halt()
	m := NewMachine(mustBuild(t, b), NewMemory())
	m.Cancel = func() bool { return false }
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(1) != 7 {
		t.Error("result wrong under no-op cancel hook")
	}
}

func TestSymbols(t *testing.T) {
	b := NewBuilder("syms", 0x100)
	b.Nop()
	b.Label("entry2")
	b.Nop()
	b.Label("fn")
	b.Halt()
	p := mustBuild(t, b)
	pc, ok := p.SymbolPC("fn")
	if !ok || pc != 0x108 {
		t.Errorf("fn pc = %#x,%v", pc, ok)
	}
	if _, ok := p.SymbolPC("missing"); ok {
		t.Error("missing symbol found")
	}
	if p.Symbols["entry2"] != 1 {
		t.Errorf("entry2 index %d", p.Symbols["entry2"])
	}
}

func TestUnknownOpcodeRejected(t *testing.T) {
	p := &Program{Name: "bad", Code: []Instr{{Op: Op(200)}}}
	m := NewMachine(p, NewMemory())
	if _, err := m.Run(nil); !errors.Is(err, ErrUnknownOpcode) {
		t.Errorf("err = %v, want ErrUnknownOpcode", err)
	}
}

func TestGuestUnalignedAccessSurfaces(t *testing.T) {
	// A guest load from an unaligned address must fail with a located
	// error, not corrupt memory.
	b := NewBuilder("unaligned", 0)
	b.Li(1, 2)
	b.Ld(2, 1, 0)
	b.Halt()
	m := NewMachine(mustBuild(t, b), NewMemory())
	if _, err := m.Run(nil); !errors.Is(err, ErrUnalignedAddr) {
		t.Errorf("err = %v, want ErrUnalignedAddr", err)
	}
	// Same for FP stores.
	b = NewBuilder("unaligned-f", 0)
	b.Li(1, 4)
	b.Fst(1, 0, 1)
	b.Halt()
	m = NewMachine(mustBuild(t, b), NewMemory())
	if _, err := m.Run(nil); !errors.Is(err, ErrUnalignedAddr) {
		t.Errorf("fst err = %v, want ErrUnalignedAddr", err)
	}
}
