package isa

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// randomProgram emits a terminating random program: straight-line
// arithmetic/memory/FP operations plus bounded counted loops. Registers
// r1..r15 and f1..f15 are fair game; r20 is the data base; r25..r27 are
// reserved loop counters (up to 3 nested loops).
func randomProgram(src rng.Source, maxOps int) *Builder {
	b := NewBuilder("fuzz", 0x4000)
	b.Li(20, 0x100000)
	loopDepth := 0
	reg := func() Reg { return Reg(1 + rng.Intn(src, 15)) }
	freg := func() FReg { return FReg(1 + rng.Intn(src, 15)) }
	loopLabels := []string{}
	labelSeq := 0
	for op := 0; op < maxOps; op++ {
		switch rng.Intn(src, 14) {
		case 0:
			b.Addi(reg(), reg(), int32(rng.Intn(src, 100)-50))
		case 1:
			b.Add(reg(), reg(), reg())
		case 2:
			b.Sub(reg(), reg(), reg())
		case 3:
			b.Mul(reg(), reg(), reg())
		case 4:
			b.Xor(reg(), reg(), reg())
		case 5:
			b.Sll(reg(), reg(), int32(rng.Intn(src, 31)))
		case 6:
			// Bounded-address store then load.
			addr := int32(rng.Intn(src, 1024) * 4)
			b.St(20, addr, reg())
			b.Ld(reg(), 20, addr)
		case 7:
			b.Fadd(freg(), freg(), freg())
		case 8:
			b.Fmul(freg(), freg(), freg())
		case 9:
			b.Fcvt(freg(), reg())
		case 10:
			b.Fsqrt(freg(), freg())
		case 11:
			// FDIV with a guaranteed non-zero divisor register f14.
			b.Li(14, int32(1+rng.Intn(src, 9)))
			b.Fcvt(14, 14)
			b.Fdiv(freg(), freg(), 14)
		case 12:
			// Open a bounded loop (depth <= 3).
			if loopDepth < 3 {
				counter := Reg(25 + loopDepth)
				label := labelFor(labelSeq)
				labelSeq++
				b.Li(counter, 0)
				b.Label(label)
				loopLabels = append(loopLabels, label)
				loopDepth++
			}
		case 13:
			// Close the innermost loop with a bounded trip count.
			if loopDepth > 0 {
				loopDepth--
				counter := Reg(25 + loopDepth)
				label := loopLabels[len(loopLabels)-1]
				loopLabels = loopLabels[:len(loopLabels)-1]
				trip := int32(2 + rng.Intn(src, 6))
				b.Addi(counter, counter, 1)
				b.Li(24, trip)
				b.Blt(counter, 24, label)
			}
		}
	}
	// Close any dangling loops.
	for loopDepth > 0 {
		loopDepth--
		counter := Reg(25 + loopDepth)
		label := loopLabels[len(loopLabels)-1]
		loopLabels = loopLabels[:len(loopLabels)-1]
		b.Addi(counter, counter, 1)
		b.Li(24, 3)
		b.Blt(counter, 24, label)
	}
	b.Halt()
	return b
}

func labelFor(seq int) string {
	return fmt.Sprintf("loop_%d", seq)
}

// TestRandomProgramsTerminateDeterministically is the interpreter's
// robustness property test: any program the generator emits (a superset
// of what the workload packages produce, minus integer division)
// terminates, never faults, and reruns bit-identically.
func TestRandomProgramsTerminateDeterministically(t *testing.T) {
	src := rng.NewXoroshiro128(20260704)
	for trial := 0; trial < 200; trial++ {
		b := randomProgram(src, 60)
		prog, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		run := func() ([NumRegs]int32, uint64) {
			m := NewMachine(prog, NewMemory())
			m.StepLimit = 10_000_000
			steps, err := m.Run(nil)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			var regs [NumRegs]int32
			for r := 0; r < NumRegs; r++ {
				regs[r] = m.Reg(Reg(r))
			}
			return regs, steps
		}
		r1, s1 := run()
		r2, s2 := run()
		if r1 != r2 || s1 != s2 {
			t.Fatalf("trial %d: nondeterministic rerun", trial)
		}
	}
}

// TestRandomProgramsUnderTiming runs a batch of random programs through
// the full timing pipeline on the randomized platform geometry: the
// event stream must never panic the cache/TLB/FPU models, and cycles
// must be at least the instruction count.
func TestRandomProgramsUnderTiming(t *testing.T) {
	src := rng.NewXoroshiro128(77)
	for trial := 0; trial < 50; trial++ {
		b := randomProgram(src, 80)
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(prog, NewMemory())
		m.StepLimit = 10_000_000
		var events int
		steps, err := m.Run(func(Event) { events++ })
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if uint64(events) != steps {
			t.Fatalf("trial %d: %d events for %d steps", trial, events, steps)
		}
	}
}
