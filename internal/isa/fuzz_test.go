package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/rng"
)

// randomProgram emits a terminating random program: straight-line
// arithmetic/memory/FP operations plus bounded counted loops. Registers
// r1..r15 and f1..f15 are fair game; r20 is the data base; r25..r27 are
// reserved loop counters (up to 3 nested loops).
func randomProgram(src rng.Source, maxOps int) *Builder {
	b := NewBuilder("fuzz", 0x4000)
	b.Li(20, 0x100000)
	loopDepth := 0
	reg := func() Reg { return Reg(1 + rng.Intn(src, 15)) }
	freg := func() FReg { return FReg(1 + rng.Intn(src, 15)) }
	loopLabels := []string{}
	labelSeq := 0
	for op := 0; op < maxOps; op++ {
		switch rng.Intn(src, 14) {
		case 0:
			b.Addi(reg(), reg(), int32(rng.Intn(src, 100)-50))
		case 1:
			b.Add(reg(), reg(), reg())
		case 2:
			b.Sub(reg(), reg(), reg())
		case 3:
			b.Mul(reg(), reg(), reg())
		case 4:
			b.Xor(reg(), reg(), reg())
		case 5:
			b.Sll(reg(), reg(), int32(rng.Intn(src, 31)))
		case 6:
			// Bounded-address store then load.
			addr := int32(rng.Intn(src, 1024) * 4)
			b.St(20, addr, reg())
			b.Ld(reg(), 20, addr)
		case 7:
			b.Fadd(freg(), freg(), freg())
		case 8:
			b.Fmul(freg(), freg(), freg())
		case 9:
			b.Fcvt(freg(), reg())
		case 10:
			b.Fsqrt(freg(), freg())
		case 11:
			// FDIV with a guaranteed non-zero divisor register f14.
			b.Li(14, int32(1+rng.Intn(src, 9)))
			b.Fcvt(14, 14)
			b.Fdiv(freg(), freg(), 14)
		case 12:
			// Open a bounded loop (depth <= 3).
			if loopDepth < 3 {
				counter := Reg(25 + loopDepth)
				label := labelFor(labelSeq)
				labelSeq++
				b.Li(counter, 0)
				b.Label(label)
				loopLabels = append(loopLabels, label)
				loopDepth++
			}
		case 13:
			// Close the innermost loop with a bounded trip count.
			if loopDepth > 0 {
				loopDepth--
				counter := Reg(25 + loopDepth)
				label := loopLabels[len(loopLabels)-1]
				loopLabels = loopLabels[:len(loopLabels)-1]
				trip := int32(2 + rng.Intn(src, 6))
				b.Addi(counter, counter, 1)
				b.Li(24, trip)
				b.Blt(counter, 24, label)
			}
		}
	}
	// Close any dangling loops.
	for loopDepth > 0 {
		loopDepth--
		counter := Reg(25 + loopDepth)
		label := loopLabels[len(loopLabels)-1]
		loopLabels = loopLabels[:len(loopLabels)-1]
		b.Addi(counter, counter, 1)
		b.Li(24, 3)
		b.Blt(counter, 24, label)
	}
	b.Halt()
	return b
}

func labelFor(seq int) string {
	return fmt.Sprintf("loop_%d", seq)
}

// TestRandomProgramsTerminateDeterministically is the interpreter's
// robustness property test: any program the generator emits (a superset
// of what the workload packages produce, minus integer division)
// terminates, never faults, and reruns bit-identically.
func TestRandomProgramsTerminateDeterministically(t *testing.T) {
	src := rng.NewXoroshiro128(20260704)
	for trial := 0; trial < 200; trial++ {
		b := randomProgram(src, 60)
		prog, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		run := func() ([NumRegs]int32, uint64) {
			m := NewMachine(prog, NewMemory())
			m.StepLimit = 10_000_000
			steps, err := m.Run(nil)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			var regs [NumRegs]int32
			for r := 0; r < NumRegs; r++ {
				regs[r] = m.Reg(Reg(r))
			}
			return regs, steps
		}
		r1, s1 := run()
		r2, s2 := run()
		if r1 != r2 || s1 != s2 {
			t.Fatalf("trial %d: nondeterministic rerun", trial)
		}
	}
}

// decodeFuzzProgram maps arbitrary fuzzer bytes onto a program, 8 bytes
// per instruction: opcode (mod 48, so invalid opcodes past OpFtoi are
// reachable), the three integer and three FP register selectors (mod
// 32), a 16-bit signed immediate and a 16-bit signed branch target.
// Unlike randomProgram above — which only emits well-formed code — this
// decoder produces wild control flow, unaligned addresses, division by
// zero and undecodable opcodes on purpose.
func decodeFuzzProgram(data []byte) *Program {
	code := make([]Instr, 0, len(data)/8+1)
	for len(data) >= 8 {
		code = append(code, Instr{
			Op:     Op(data[0] % 48),
			Rd:     Reg(data[1] % NumRegs),
			Rs1:    Reg(data[2] % NumRegs),
			Rs2:    Reg(data[3] % NumRegs),
			Fd:     FReg(data[1] % NumRegs),
			Fs1:    FReg(data[2] % NumRegs),
			Fs2:    FReg(data[3] % NumRegs),
			Imm:    int32(int16(binary.LittleEndian.Uint16(data[4:6]))),
			Target: int32(int16(binary.LittleEndian.Uint16(data[6:8]))),
		})
		data = data[8:]
	}
	code = append(code, Instr{Op: OpHalt})
	return &Program{Name: "fuzz", CodeBase: 0x4000, Code: code}
}

// FuzzInterpreter throws arbitrary instruction streams at the
// interpreter: it must never panic, must fail only with its documented
// error classes, and must replay bit-identically — the property the
// whole measurement protocol rests on.
func FuzzInterpreter(f *testing.F) {
	f.Add([]byte{})
	// add r1, r1, r1; jmp @0 — a tight infinite loop (step limit).
	f.Add([]byte{
		byte(OpAdd), 1, 1, 1, 0, 0, 0, 0,
		byte(OpJmp), 0, 0, 0, 0, 0, 0, 0,
	})
	// div r1, r2, r0 — divide by zero.
	f.Add([]byte{byte(OpDiv), 1, 2, 0, 0, 0, 0, 0})
	// ld r1, [r0+3] — unaligned load.
	f.Add([]byte{byte(OpLd), 1, 0, 0, 3, 0, 0, 0})
	// ret [r5] with a garbage register value — PC out of range.
	f.Add([]byte{
		byte(OpAddi), 5, 0, 0, 0x39, 0x30, 0, 0,
		byte(OpRet), 0, 5, 0, 0, 0, 0, 0,
	})
	// Opcode 47 — undecodable.
	f.Add([]byte{47, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8*4096 {
			t.Skip("program too large")
		}
		prog := decodeFuzzProgram(data)
		run := func() (uint64, [NumRegs]int32, error) {
			m := NewMachine(prog, NewMemory())
			m.StepLimit = 50_000
			var events uint64
			steps, err := m.Run(func(Event) { events++ })
			if events != steps {
				t.Fatalf("%d events for %d retired instructions", events, steps)
			}
			var regs [NumRegs]int32
			for r := 0; r < NumRegs; r++ {
				regs[r] = m.Reg(Reg(r))
			}
			return steps, regs, err
		}

		steps, regs, err := run()
		if err != nil {
			known := false
			for _, want := range []error{
				ErrDivideByZero, ErrPCOutOfRange, ErrUnalignedAddr,
				ErrStepLimit, ErrUnknownOpcode,
			} {
				if errors.Is(err, want) {
					known = true
					break
				}
			}
			if !known {
				t.Fatalf("undocumented error class: %v", err)
			}
		}

		steps2, regs2, err2 := run()
		if steps != steps2 || regs != regs2 || (err == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic replay: steps %d/%d, err %v/%v", steps, steps2, err, err2)
		}
		if err != nil && err.Error() != err2.Error() {
			t.Fatalf("nondeterministic error: %v vs %v", err, err2)
		}
	})
}

// TestRandomProgramsUnderTiming runs a batch of random programs through
// the full timing pipeline on the randomized platform geometry: the
// event stream must never panic the cache/TLB/FPU models, and cycles
// must be at least the instruction count.
func TestRandomProgramsUnderTiming(t *testing.T) {
	src := rng.NewXoroshiro128(77)
	for trial := 0; trial < 50; trial++ {
		b := randomProgram(src, 80)
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(prog, NewMemory())
		m.StepLimit = 10_000_000
		var events int
		steps, err := m.Run(func(Event) { events++ })
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if uint64(events) != steps {
			t.Fatalf("trial %d: %d events for %d steps", trial, events, steps)
		}
	}
}
