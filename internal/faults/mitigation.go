package faults

import (
	"context"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/platform"
)

// MitigationKind selects the fault-mitigation scheme layered on the
// injector.
type MitigationKind string

// Mitigation schemes. The zero value (or "none") disables mitigation:
// injected runs quarantine exactly as before.
const (
	MitigationNone     MitigationKind = "none"
	MitigationScrub    MitigationKind = "scrub"
	MitigationECC      MitigationKind = "ecc"
	MitigationLockstep MitigationKind = "lockstep"
)

// MitigationKinds lists the mitigation schemes in canonical order.
func MitigationKinds() []MitigationKind {
	return []MitigationKind{MitigationNone, MitigationScrub, MitigationECC, MitigationLockstep}
}

// Mitigated run outcomes: runs whose upsets a mitigation layer absorbed.
// Unlike the quarantine taxonomy these outcomes stay in the analyzed
// measurement series — the mitigation's cycle overhead is the point, it
// must flow into the pWCET estimate. platform.MitigatedOutcome
// recognizes exactly this set (enforced by test).
const (
	// OutcomeCorrected marks an ECC run whose single-bit upsets were all
	// corrected in place (per-correction latency charged).
	OutcomeCorrected = "corrected"
	// OutcomeScrubbed marks a scrub run that completed with correct
	// output and whose upsets all landed in scrubbed arrays.
	OutcomeScrubbed = "scrubbed"
	// OutcomeVoted marks a lockstep run recovered by majority vote over
	// N replicas (redundant execution + vote overhead charged).
	OutcomeVoted = "voted"
)

// MitigatedOutcomes lists the mitigated outcome classes in canonical
// report order.
func MitigatedOutcomes() []string {
	return []string{OutcomeCorrected, OutcomeScrubbed, OutcomeVoted}
}

// Mitigation configures the fault-mitigation layer. Cycle accounting is
// deterministic: every overhead is a pure function of the run's
// instruction count, the fault schedule and the clean baseline, so
// mitigated campaigns reproduce bit-for-bit from the base seed.
type Mitigation struct {
	// Kind selects the scheme: "" or "none" (quarantine as before),
	// "scrub" (periodic array scrubbing), "ecc" (SEC-DED on cache/TLB
	// tag+state arrays), "lockstep" (software N-run redundancy with
	// majority voting).
	Kind MitigationKind `json:"kind,omitempty"`

	// ScrubInterval is the scrub period in retired instructions
	// (default 2048): upsets in cache/TLB arrays are reverted — the
	// affected cell invalidated, which is always architecturally safe —
	// at the next scrub boundary. Every run is charged
	// floor(instructions/interval)*ScrubCost cycles of scrub traffic.
	ScrubInterval uint64 `json:"scrub_interval,omitempty"`
	// ScrubCost is the deterministic cycle cost of one scrub pass
	// (default 32).
	ScrubCost uint64 `json:"scrub_cost,omitempty"`

	// ECCLatency is the cycle cost of one single-bit correction
	// (default 8). Double-bit upsets — two scheduled upsets addressing
	// the same cell — exceed SEC-DED and escalate to the existing
	// outcome taxonomy.
	ECCLatency uint64 `json:"ecc_latency,omitempty"`

	// Replicas is the lockstep redundancy degree N >= 2 (default 3).
	// Every run pays N executions; a diverged replica under N == 2
	// costs one extra tie-break re-execution.
	Replicas int `json:"replicas,omitempty"`
	// VoteCost is the cycle cost of the majority vote (default 64).
	VoteCost uint64 `json:"vote_cost,omitempty"`
}

// Mitigation defaults.
const (
	defaultScrubInterval uint64 = 2048
	defaultScrubCost     uint64 = 32
	defaultECCLatency    uint64 = 8
	defaultReplicas             = 3
	defaultVoteCost      uint64 = 64
)

// Enabled reports whether a mitigation scheme is selected.
func (m Mitigation) Enabled() bool {
	return m.Kind != "" && m.Kind != MitigationNone
}

// normalize applies defaults and validates; the returned mitigation is
// what the injector stores.
func (m Mitigation) normalize() (Mitigation, error) {
	switch m.Kind {
	case "", MitigationNone:
		m.Kind = MitigationNone
	case MitigationScrub:
		if m.ScrubInterval == 0 {
			m.ScrubInterval = defaultScrubInterval
		}
		if m.ScrubCost == 0 {
			m.ScrubCost = defaultScrubCost
		}
	case MitigationECC:
		if m.ECCLatency == 0 {
			m.ECCLatency = defaultECCLatency
		}
	case MitigationLockstep:
		if m.Replicas == 0 {
			m.Replicas = defaultReplicas
		}
		if m.Replicas < 2 {
			return m, fmt.Errorf("faults: lockstep needs >= 2 replicas, got %d", m.Replicas)
		}
		if m.VoteCost == 0 {
			m.VoteCost = defaultVoteCost
		}
	default:
		return m, fmt.Errorf("faults: unknown mitigation kind %q (have none, scrub, ecc, lockstep)", m.Kind)
	}
	return m, nil
}

// Validate checks the configuration (spec-level use, e.g. matrix
// expansion) without applying defaults.
func (m Mitigation) Validate() error {
	_, err := m.normalize()
	return err
}

// label is the mitigation's compact axis identifier.
func (m Mitigation) label() string {
	if m.Kind == "" {
		return string(MitigationNone)
	}
	return string(m.Kind)
}

// String returns the mitigation's kind label ("none", "scrub", "ecc",
// "lockstep").
func (m Mitigation) String() string { return m.label() }

// ParseMitigation resolves a mitigation kind name (as given on
// -mitigation flags) to a Mitigation with that kind's defaults. Empty
// and "none" both yield the zero value.
func ParseMitigation(s string) (Mitigation, error) {
	switch MitigationKind(s) {
	case "", MitigationNone:
		return Mitigation{}, nil
	case MitigationScrub:
		return Mitigation{Kind: MitigationScrub}, nil
	case MitigationECC:
		return Mitigation{Kind: MitigationECC}, nil
	case MitigationLockstep:
		return Mitigation{Kind: MitigationLockstep}, nil
	}
	return Mitigation{}, fmt.Errorf("faults: unknown mitigation %q (have none, scrub, ecc, lockstep)", s)
}

// arrayTarget reports whether t is a cache/TLB array — the storage
// scrubbing and ECC protect. Register files have neither.
func arrayTarget(t Target) bool {
	switch t {
	case TargetIL1, TargetDL1, TargetITLB, TargetDTLB:
		return true
	}
	return false
}

// allArrayFaults reports whether every scheduled upset landed in a
// protected array.
func allArrayFaults(plan []Fault) bool {
	for _, f := range plan {
		if !arrayTarget(f.Target) {
			return false
		}
	}
	return true
}

// cleanOverhead charges the mitigation's standing cost to a zero-upset
// run: scrub traffic and lockstep redundancy are paid whether or not an
// upset arrives; ECC is free on clean runs. The outcome stays empty —
// the run is clean, only its cycle count reflects the mitigation.
func (in *Injector) cleanOverhead(res platform.RunResult) platform.RunResult {
	m := in.cfg.Mitigation
	switch m.Kind {
	case MitigationScrub:
		res.Cycles += scrubOverhead(m, res.Instructions)
	case MitigationLockstep:
		res.Cycles = uint64(m.Replicas)*res.Cycles + m.VoteCost
	}
	return res
}

// scrubOverhead is the deterministic scrub-traffic charge: one pass per
// completed interval of retired instructions.
func scrubOverhead(m Mitigation, instructions uint64) uint64 {
	return (instructions / m.ScrubInterval) * m.ScrubCost
}

// scrubber reverts array upsets at periodic scrub boundaries during a
// faulted run: each pending upset's cell is invalidated, which is
// always architecturally safe for transparent caches and TLBs.
type scrubber struct {
	interval uint64
	next     uint64
	pending  []Fault
}

// note records an applied upset for revert at the next boundary.
func (s *scrubber) note(f Fault) {
	if arrayTarget(f.Target) {
		s.pending = append(s.pending, f)
	}
}

// tick fires every scrub boundary crossed by the retired-instruction
// count.
func (s *scrubber) tick(steps uint64, c *cpu.Core) {
	for steps >= s.next {
		s.flush(c)
		s.next += s.interval
	}
}

// flush invalidates the cells of all pending upsets.
func (s *scrubber) flush(c *cpu.Core) {
	for _, f := range s.pending {
		switch f.Target {
		case TargetIL1, TargetDL1:
			cc := c.IL1
			if f.Target == TargetDL1 {
				cc = c.DL1
			}
			cc.Scrub(f.Set, f.Way)
		case TargetITLB, TargetDTLB:
			tt := c.ITLB
			if f.Target == TargetDTLB {
				tt = c.DTLB
			}
			tt.Scrub(f.Set)
		}
	}
	s.pending = s.pending[:0]
}

// scrubRun executes an injected run under periodic scrubbing: upsets
// apply as scheduled, scrub boundaries revert array upsets, and the
// scrub-traffic charge lands on the final cycle count. A run that
// completes with correct output and whose upsets all hit scrubbed
// arrays is fully covered — outcome "scrubbed", kept for analysis.
// Register upsets are outside scrub coverage, so runs involving them
// (and all wrong-output/hung runs) classify by the base taxonomy.
func (in *Injector) scrubRun(ctx context.Context, p *platform.Platform, w platform.Workload, run int, seed uint64, base platform.RunResult, plan []Fault) (platform.RunResult, error) {
	m := in.cfg.Mitigation
	sc := &scrubber{interval: m.ScrubInterval, next: m.ScrubInterval}
	res, err := in.faultedRun(ctx, p, w, run, seed, base, plan, sc)
	if err != nil {
		return res, err
	}
	if (res.Outcome == OutcomeMasked || res.Outcome == OutcomeTimingPerturbed) && allArrayFaults(plan) {
		res.Outcome = OutcomeScrubbed
	}
	res.Cycles += scrubOverhead(m, res.Instructions)
	return res, nil
}

// eccRun executes an injected run under SEC-DED protection of the
// cache/TLB arrays. Single-bit upsets (one scheduled upset per cell)
// never reach the array: each costs ECCLatency cycles. Double-bit
// upsets — two upsets addressing the same cell — and register-file
// upsets are uncorrectable: they inject for real and the run classifies
// by the base taxonomy. A fully corrected run needs no faulted
// re-execution at all: its timing is the clean baseline plus the
// correction latency, outcome "corrected", kept for analysis.
func (in *Injector) eccRun(ctx context.Context, p *platform.Platform, w platform.Workload, run int, seed uint64, base platform.RunResult, plan []Fault) (platform.RunResult, error) {
	type cell struct {
		t        Target
		set, way int
	}
	hits := make(map[cell]int)
	for _, f := range plan {
		if arrayTarget(f.Target) {
			hits[cell{f.Target, f.Set, f.Way}]++
		}
	}
	var escalated []Fault
	corrections := 0
	for _, f := range plan {
		if arrayTarget(f.Target) && hits[cell{f.Target, f.Set, f.Way}] == 1 {
			in.upsets[f.Target].Inc() // the upset occurred; ECC absorbed it
			corrections++
			continue
		}
		escalated = append(escalated, f)
	}
	latency := uint64(corrections) * in.cfg.Mitigation.ECCLatency
	if len(escalated) == 0 {
		res := base
		res.Cycles += latency
		res.Faults = len(plan)
		res.Outcome = OutcomeCorrected
		return res, nil
	}
	res, err := in.faultedRun(ctx, p, w, run, seed, base, escalated, nil)
	if err != nil {
		return res, err
	}
	res.Cycles += latency
	res.Faults += corrections
	return res, nil
}

// lockstepRun executes an injected run under software N-run lockstep:
// only one of the N replicas carries the upsets (the schedule is a
// per-run draw), so the majority vote always recovers the correct
// output — no injected run quarantines. The price is paid in time, not
// correctness: the faulted replica's cycles plus N-1 clean re-executions
// plus the vote, and a diverged replica under N == 2 forces one extra
// tie-break re-execution. That overhead flows straight into the timing
// analysis — which is exactly the performability question.
func (in *Injector) lockstepRun(ctx context.Context, p *platform.Platform, w platform.Workload, run int, seed uint64, base platform.RunResult, plan []Fault) (platform.RunResult, error) {
	res, err := in.faultedRun(ctx, p, w, run, seed, base, plan, nil)
	if err != nil {
		return res, err
	}
	m := in.cfg.Mitigation
	redundant := uint64(m.Replicas-1) * base.Cycles
	if m.Replicas == 2 && (res.Outcome == OutcomeWrongOutput || res.Outcome == OutcomeHung) {
		redundant += base.Cycles // 1-1 split: tie-break re-execution
	}
	res.Cycles += redundant + m.VoteCost
	res.Outcome = OutcomeVoted
	return res, nil
}
