package faults

import (
	"math"
	"testing"
)

func TestHazardConstantIsExact(t *testing.T) {
	// Bit-identity hinges on the constant profile returning the base
	// rate unchanged — not rate*1.0, which could differ in the last ulp.
	for _, h := range []Hazard{{}, {Kind: HazardConstant}} {
		hn, err := h.normalize()
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range []float64{0, 0.25, 1.7, 1e-9} {
			for _, run := range []int{0, 1, 999, 1 << 20} {
				if got := hn.RateAt(base, run); got != base {
					t.Fatalf("constant RateAt(%g, %d) = %g", base, run, got)
				}
			}
		}
	}
}

func TestHazardWeightsMeanOne(t *testing.T) {
	// Both time-varying profiles are normalized to mean 1 over their
	// window, so the expected total upset count matches the constant
	// profile's — the hazard reshapes when upsets land, not how many.
	cases := []struct {
		name string
		h    Hazard
		n    int
	}{
		{"weibull", Hazard{Kind: HazardWeibull}, defaultMissionRuns},
		{"weibull-steep", Hazard{Kind: HazardWeibull, Shape: 4}, defaultMissionRuns},
		{"orbit", Hazard{Kind: HazardOrbit}, defaultOrbitPeriod},
	}
	for _, tc := range cases {
		h, err := tc.h.normalize()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i < tc.n; i++ {
			w := h.Weight(i)
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("%s: weight(%d) = %g", tc.name, i, w)
			}
			sum += w
		}
		if mean := sum / float64(tc.n); math.Abs(mean-1) > 0.01 {
			t.Errorf("%s: mean weight %.4f, want ~1", tc.name, mean)
		}
	}
}

func TestHazardWeibullWearOutMonotone(t *testing.T) {
	h, err := Hazard{Kind: HazardWeibull}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Shape 2 is increasing wear-out: late mission runs see higher rates.
	prev := -1.0
	for i := 0; i < h.MissionRuns; i += 100 {
		w := h.Weight(i)
		if w <= prev {
			t.Fatalf("weight not increasing at run %d: %g <= %g", i, w, prev)
		}
		prev = w
	}
}

func TestHazardOrbitPeriodic(t *testing.T) {
	h, err := Hazard{Kind: HazardOrbit, Period: 100, Amplitude: 0.5}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := h.Weight(i), h.Weight(i+100); math.Abs(a-b) > 1e-12 {
			t.Fatalf("weight(%d)=%g vs weight(%d)=%g", i, a, i+100, b)
		}
	}
	// The swing stays inside [1-A, 1+A].
	for i := 0; i < 100; i++ {
		if w := h.Weight(i); w < 0.5-1e-12 || w > 1.5+1e-12 {
			t.Fatalf("weight(%d) = %g outside [0.5, 1.5]", i, w)
		}
	}
}

func TestHazardCampaignDeterministic(t *testing.T) {
	mk := func() *Summary {
		in, err := New(Config{Rate: 1, Hazard: Hazard{Kind: HazardWeibull, MissionRuns: 30}})
		if err != nil {
			t.Fatal(err)
		}
		s := Summarize(streamWith(t, in.Runner(), 30).Results)
		return &s
	}
	a, b := mk(), mk()
	if a.Injected != b.Injected || a.Clean != b.Clean {
		t.Fatalf("hazard campaign not reproducible: %+v vs %+v", a, b)
	}
	if a.Injected == 0 {
		t.Fatal("weibull hazard injected nothing at rate 1")
	}
}

func TestHazardLabels(t *testing.T) {
	for s, kind := range map[string]HazardKind{
		"constant": HazardConstant, "weibull": HazardWeibull, "orbit": HazardOrbit,
	} {
		h, err := ParseHazard(s)
		if err != nil {
			t.Fatal(err)
		}
		want := s
		if kind == HazardConstant {
			// The zero value labels itself constant.
			h = Hazard{}
		}
		if h.String() != want {
			t.Errorf("String() = %q, want %q", h.String(), want)
		}
	}
}
