// Package faults implements deterministic single-event-upset (SEU)
// injection for measurement campaigns. In the space domain SEUs are the
// dominant hardware hazard, so pWCET claims must be shown to survive
// them: the injector flips bits in the cache and TLB tag+state arrays
// and in the register files at a configurable per-run rate, classifies
// every injected run, and quarantines it from the timing analysis so
// the i.i.d. gate and the Gumbel fit only ever see clean measurements.
//
// Determinism follows the campaign's seed discipline: the fault
// schedule of run i is derived from DeriveRunSeed(BaseSeed, i) through
// an independent PRNG stream, so the same base seed reproduces the same
// upsets — and at rate 0 the injector is bit-identical to a fault-free
// campaign.
//
// Each injected run is classified into exactly one outcome:
//
//   - masked: the program halted with correct output in exactly the
//     fault-free cycle count — the upset had no observable effect.
//   - timing-perturbed: correct output, different cycle count (e.g. a
//     tag upset turned hits into misses).
//   - wrong-output: the program crashed, or halted with output that
//     disagrees with the workload's golden reference (OutputChecker).
//   - hung: the watchdog tripped — the run retired WatchdogFactor
//     times the fault-free instruction count without halting.
//
// Classification needs a fault-free reference, so a run whose Poisson
// draw is nonzero is first executed clean (same seed; the platform
// protocol makes that reproducible) and then re-executed with the
// upsets applied.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Run outcome classes, stored in platform.RunResult.Outcome. A clean
// (non-injected or zero-upset) run keeps the empty outcome.
const (
	OutcomeMasked          = "masked"
	OutcomeTimingPerturbed = "timing-perturbed"
	OutcomeWrongOutput     = "wrong-output"
	OutcomeHung            = "hung"
)

// Outcomes lists the outcome classes in canonical report order.
func Outcomes() []string {
	return []string{OutcomeMasked, OutcomeTimingPerturbed, OutcomeWrongOutput, OutcomeHung}
}

// Target selects a hardware array subject to upsets.
type Target string

// Injection targets.
const (
	TargetIL1    Target = "il1"  // IL1 tag + state arrays
	TargetDL1    Target = "dl1"  // DL1 tag + state arrays
	TargetITLB   Target = "itlb" // ITLB entry + state arrays
	TargetDTLB   Target = "dtlb" // DTLB entry + state arrays
	TargetIntReg Target = "ireg" // integer register file
	TargetFPReg  Target = "freg" // floating-point register file
)

// AllTargets lists every injection target (the default target set).
func AllTargets() []Target {
	return []Target{TargetIL1, TargetDL1, TargetITLB, TargetDTLB, TargetIntReg, TargetFPReg}
}

// OutputChecker is implemented by workloads that can validate a run's
// architectural output against a golden reference (e.g. the TVCA
// host-side reference). Without it wrong-output corruption that does
// not crash the machine is indistinguishable from a masked or
// timing-perturbed upset, so classification degrades to timing-only.
type OutputChecker interface {
	CheckOutput(m *isa.Machine, run int) error
}

// Config tunes the injector.
type Config struct {
	// Rate is the expected number of upsets per run; the per-run count
	// is Poisson(Rate), drawn deterministically from the run seed. Rate
	// 0 disables injection (every run is clean and bit-identical to a
	// campaign without the injector).
	Rate float64
	// Hazard modulates Rate over the campaign's run index (wear-out,
	// orbit phase). The zero value is the constant profile, bit-identical
	// to a hazard-free config.
	Hazard Hazard
	// Mitigation layers a fault-mitigation scheme (scrubbing, ECC,
	// lockstep) over the injector; mitigated runs stay in the analyzed
	// series with their recovery overhead charged as cycles. The zero
	// value disables mitigation, bit-identical to today's quarantine
	// behavior.
	Mitigation Mitigation
	// Targets restricts the arrays subject to upsets (nil = all);
	// duplicates are rejected (a repeated target would double-weight
	// that array in the upset-location draw).
	Targets []Target
	// WatchdogFactor declares a faulted run hung once it retires Factor
	// times the fault-free instruction count without halting (default 8,
	// minimum 2).
	WatchdogFactor int
	// Salt decorrelates the fault-schedule PRNG stream from the
	// platform's randomized resources; campaigns differing only in Salt
	// inject independent schedules. Zero selects a fixed default.
	Salt uint64
	// Telemetry, when non-nil, counts injected upsets per target array
	// (faults_upsets_<target>_total). Injection schedules are seed-
	// derived, so the totals are deterministic for a fixed base seed
	// even though workers update them concurrently.
	Telemetry *telemetry.Registry
}

// faultStream separates the injector's PRNG stream from every other
// consumer of the run seed.
const faultStream uint64 = 0xFA17D00D5EEDB175

// maxFaultsPerRun caps a single run's Poisson draw (absurd rates would
// otherwise stall scheduling).
const maxFaultsPerRun = 4096

// watchdogSlack is the minimum headroom, in retired instructions, the
// watchdog budget keeps above the fault-free instruction count.
const watchdogSlack = 4096

// Injector is a deterministic SEU injector; plug it into a campaign via
// Runner. Safe for concurrent use by multiple campaign workers: all
// mutable state is per-run.
type Injector struct {
	cfg     Config
	targets []Target
	// upsets holds the pre-resolved per-target telemetry counters (nil
	// Counter values are no-ops when telemetry is disabled).
	upsets map[Target]*telemetry.Counter
	// clamped counts runs whose Poisson draw hit maxFaultsPerRun and had
	// its fault schedule truncated (faults_clamped_runs_total).
	clamped     *telemetry.Counter
	clampedRuns atomic.Int64
}

// New validates cfg and returns an injector.
func New(cfg Config) (*Injector, error) {
	if cfg.Rate < 0 || math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("faults: rate %g must be finite and >= 0", cfg.Rate)
	}
	var err error
	if cfg.Hazard, err = cfg.Hazard.normalize(); err != nil {
		return nil, err
	}
	if cfg.Mitigation, err = cfg.Mitigation.normalize(); err != nil {
		return nil, err
	}
	if cfg.WatchdogFactor == 0 {
		cfg.WatchdogFactor = 8
	}
	if cfg.WatchdogFactor < 2 {
		return nil, fmt.Errorf("faults: watchdog factor %d < 2", cfg.WatchdogFactor)
	}
	if cfg.Salt == 0 {
		cfg.Salt = faultStream
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = AllTargets()
	}
	known := make(map[Target]bool)
	for _, t := range AllTargets() {
		known[t] = true
	}
	seen := make(map[Target]bool, len(targets))
	for _, t := range targets {
		if !known[t] {
			return nil, fmt.Errorf("faults: unknown target %q", t)
		}
		if seen[t] {
			return nil, fmt.Errorf("faults: duplicate target %q (a repeated target double-weights that array in the upset-location draw)", t)
		}
		seen[t] = true
	}
	upsets := make(map[Target]*telemetry.Counter, len(targets))
	for _, t := range targets {
		upsets[t] = cfg.Telemetry.Counter("faults_upsets_" + telemetry.SanitizeName(string(t)) + "_total")
	}
	return &Injector{
		cfg:     cfg,
		targets: targets,
		upsets:  upsets,
		clamped: cfg.Telemetry.Counter("faults_clamped_runs_total"),
	}, nil
}

// Rate returns the configured expected upsets per run.
func (in *Injector) Rate() float64 { return in.cfg.Rate }

// ClampedRuns returns how many runs so far had their Poisson draw hit
// the maxFaultsPerRun cap (fault schedule truncated). Zero under any
// sane rate; a nonzero count means the configured rate is beyond what
// the injector faithfully models and is surfaced in the campaign
// report rather than silently swallowed.
func (in *Injector) ClampedRuns() int { return int(in.clampedRuns.Load()) }

// Runner adapts the injector to StreamCampaign's per-run hook.
func (in *Injector) Runner() platform.RunFunc { return in.Execute }

// Execute performs one (possibly injected) measurement run. A zero
// Poisson draw takes exactly the clean path, so the measured series at
// rate 0 is bit-identical to a campaign without the injector. A nonzero
// draw runs clean first (the classification baseline), then re-runs
// with the upsets applied and classifies the result; classified runs
// return a nil error so the campaign proceeds without retrying them.
func (in *Injector) Execute(ctx context.Context, p *platform.Platform, w platform.Workload, run int, seed uint64) (platform.RunResult, error) {
	src := rng.NewSplitMix64(seed ^ in.cfg.Salt)
	n, clamped := poisson(src, in.cfg.Hazard.RateAt(in.cfg.Rate, run))
	if clamped {
		in.clampedRuns.Add(1)
		in.clamped.Inc()
	}
	if n == 0 {
		res, err := p.RunCtx(ctx, w, run, seed)
		if err != nil || !in.cfg.Mitigation.Enabled() {
			return res, err
		}
		return in.cleanOverhead(res), nil
	}
	base, err := p.RunCtx(ctx, w, run, seed)
	if err != nil {
		return base, err
	}
	plan := in.plan(src, n, base.Instructions, p.Core())
	switch in.cfg.Mitigation.Kind {
	case MitigationScrub:
		return in.scrubRun(ctx, p, w, run, seed, base, plan)
	case MitigationECC:
		return in.eccRun(ctx, p, w, run, seed, base, plan)
	case MitigationLockstep:
		return in.lockstepRun(ctx, p, w, run, seed, base, plan)
	}
	return in.faultedRun(ctx, p, w, run, seed, base, plan, nil)
}

// Fault is one scheduled upset: after the Step-th retired instruction,
// flip Bit of the addressed cell.
type Fault struct {
	Step   uint64
	Target Target
	// Set/Way address the cell: (set, way) for caches, entry index in
	// Set for TLBs, register number in Set for register files.
	Set, Way int
	// Bit is the flipped bit; for cache/TLB targets the value 64
	// selects the state (valid) bit instead of a tag bit.
	Bit int
}

// plan draws n upsets uniformly over the run's retired instructions and
// the selected arrays, sorted by injection step.
func (in *Injector) plan(src rng.Source, n int, instr uint64, c *cpu.Core) []Fault {
	span := int(instr)
	if span < 1 {
		span = 1
	}
	plan := make([]Fault, n)
	for i := range plan {
		t := in.targets[rng.Intn(src, len(in.targets))]
		f := Fault{Step: uint64(rng.Intn(src, span)) + 1, Target: t}
		switch t {
		case TargetIL1, TargetDL1:
			cc := c.IL1
			if t == TargetDL1 {
				cc = c.DL1
			}
			f.Set = rng.Intn(src, cc.Config().Sets())
			f.Way = rng.Intn(src, cc.Config().Ways)
			f.Bit = rng.Intn(src, 65) // 64 = state bit
		case TargetITLB, TargetDTLB:
			tt := c.ITLB
			if t == TargetDTLB {
				tt = c.DTLB
			}
			f.Set = rng.Intn(src, tt.Config().Entries)
			f.Bit = rng.Intn(src, 65) // 64 = state bit
		case TargetIntReg:
			f.Set = rng.Intn(src, isa.NumRegs)
			f.Bit = rng.Intn(src, 32)
		case TargetFPReg:
			f.Set = rng.Intn(src, isa.NumRegs)
			f.Bit = rng.Intn(src, 64)
		}
		plan[i] = f
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].Step < plan[j].Step })
	return plan
}

// faultedRun re-executes run with plan applied and classifies it
// against the clean baseline. A non-nil scrub reverts array upsets at
// its periodic boundaries (see scrubRun).
func (in *Injector) faultedRun(ctx context.Context, p *platform.Platform, w platform.Workload, run int, seed uint64, base platform.RunResult, plan []Fault, scrub *scrubber) (platform.RunResult, error) {
	m, err := w.Prepare(run)
	if err != nil {
		return platform.RunResult{}, fmt.Errorf("faults: prepare faulted run %d: %w", run, err)
	}
	p.PrepareRun(seed)
	c := p.Core()
	budget := uint64(in.cfg.WatchdogFactor) * base.Instructions
	if budget < base.Instructions+watchdogSlack {
		budget = base.Instructions + watchdogSlack
	}
	m.StepLimit = budget
	if ctx != nil && ctx.Done() != nil {
		m.Cancel = func() bool { return ctx.Err() != nil }
	}
	idx, injected := 0, 0
	startCycle := c.Cycle()
	sink := func(ev isa.Event) {
		c.Consume(ev)
		for idx < len(plan) && plan[idx].Step <= m.Steps() {
			in.apply(plan[idx], m, c)
			if scrub != nil {
				scrub.note(plan[idx])
			}
			idx++
			injected++
		}
		if scrub != nil {
			scrub.tick(m.Steps(), c)
		}
	}
	_, runErr := m.Run(sink)
	res := platform.RunResult{
		Cycles:       c.Cycle() - startCycle,
		Instructions: c.Stats().Instructions,
		Path:         w.PathOf(m),
		Faults:       injected,
	}
	switch {
	case runErr == nil:
		if chk, ok := w.(OutputChecker); ok {
			if cerr := chk.CheckOutput(m, run); cerr != nil {
				res.Outcome = OutcomeWrongOutput
				break
			}
		}
		if res.Cycles == base.Cycles {
			res.Outcome = OutcomeMasked
		} else {
			res.Outcome = OutcomeTimingPerturbed
		}
	case errors.Is(runErr, isa.ErrCancelled):
		// Campaign cancellation or per-run timeout, not a fault effect.
		return platform.RunResult{}, fmt.Errorf("faults: run %d canceled: %w", run, runErr)
	case errors.Is(runErr, isa.ErrStepLimit):
		res.Outcome = OutcomeHung
	default:
		// The machine crashed (PC escape, division by zero, unaligned
		// access, ...): architecturally corrupted.
		res.Outcome = OutcomeWrongOutput
	}
	return res, nil
}

// apply flips the addressed bit.
func (in *Injector) apply(f Fault, m *isa.Machine, c *cpu.Core) {
	in.upsets[f.Target].Inc()
	switch f.Target {
	case TargetIL1, TargetDL1:
		cc := c.IL1
		if f.Target == TargetDL1 {
			cc = c.DL1
		}
		if f.Bit >= 64 {
			cc.InjectStateFault(f.Set, f.Way)
		} else {
			cc.InjectTagFault(f.Set, f.Way, f.Bit)
		}
	case TargetITLB, TargetDTLB:
		tt := c.ITLB
		if f.Target == TargetDTLB {
			tt = c.DTLB
		}
		if f.Bit >= 64 {
			tt.InjectStateFault(f.Set)
		} else {
			tt.InjectEntryFault(f.Set, f.Bit)
		}
	case TargetIntReg:
		r := isa.Reg(f.Set % isa.NumRegs)
		m.SetReg(r, m.Reg(r)^int32(1)<<(uint(f.Bit)%32))
	case TargetFPReg:
		fr := isa.FReg(f.Set % isa.NumRegs)
		bits := math.Float64bits(m.FRegVal(fr)) ^ uint64(1)<<(uint(f.Bit)%64)
		m.SetFReg(fr, math.Float64frombits(bits))
	}
}

// poisson draws Poisson(lambda) by Knuth's product method —
// deterministic in src, exact for the small rates injection uses.
// clamped reports that the draw hit maxFaultsPerRun and the schedule
// was truncated; callers surface it instead of silently dropping it.
func poisson(src rng.Source, lambda float64) (k int, clamped bool) {
	if lambda <= 0 || math.IsNaN(lambda) {
		return 0, false
	}
	l := math.Exp(-lambda)
	p := rng.Float64(src)
	for p > l {
		k++
		if k >= maxFaultsPerRun {
			return k, true
		}
		p *= rng.Float64(src)
	}
	return k, false
}

// Summary tallies a campaign's run outcomes.
type Summary struct {
	// Total counts every executed run; Clean those kept for analysis
	// (including mitigated runs — their overhead-laden timings are part
	// of the measurement series by design).
	Total int
	Clean int
	// Injected is the number of upsets that occurred across all runs
	// (applied or absorbed by a mitigation).
	Injected int
	// ByOutcome tallies the quarantined runs per class.
	ByOutcome map[string]int
	// Mitigated tallies the analysis-clean runs whose upsets a
	// mitigation layer absorbed, per mitigated outcome class
	// (corrected / scrubbed / voted). Empty when mitigation is off.
	Mitigated map[string]int
	// ClampedRuns counts runs whose Poisson draw hit the per-run fault
	// cap and had their schedule truncated (see Injector.ClampedRuns;
	// Summarize cannot recover it from results, so callers holding the
	// injector fill it in).
	ClampedRuns int
}

// Summarize tallies results (clean runs have an empty outcome).
func Summarize(results []platform.RunResult) Summary {
	s := Summary{Total: len(results), ByOutcome: make(map[string]int), Mitigated: make(map[string]int)}
	for _, r := range results {
		s.Injected += r.Faults
		switch {
		case r.Quarantined():
			s.ByOutcome[r.Outcome]++
		case r.Outcome != "":
			s.Mitigated[r.Outcome]++
			s.Clean++
		default:
			s.Clean++
		}
	}
	return s
}

// Quarantined counts the runs excluded from the measurement series.
func (s Summary) Quarantined() int { return s.Total - s.Clean }

// MitigatedTotal counts the analysis-clean runs recovered by a
// mitigation.
func (s Summary) MitigatedTotal() int {
	n := 0
	for _, v := range s.Mitigated {
		n += v
	}
	return n
}

// String renders the summary in canonical outcome order.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d runs: %d clean, %d quarantined", s.Total, s.Clean, s.Quarantined())
	if s.Quarantined() > 0 {
		parts := make([]string, 0, len(s.ByOutcome))
		for _, o := range Outcomes() {
			if n := s.ByOutcome[o]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", o, n))
			}
		}
		// Defensive: outcomes outside the canonical set, sorted.
		extra := make([]string, 0)
		canon := make(map[string]bool)
		for _, o := range Outcomes() {
			canon[o] = true
		}
		for o := range s.ByOutcome {
			if !canon[o] {
				extra = append(extra, o)
			}
		}
		sort.Strings(extra)
		for _, o := range extra {
			parts = append(parts, fmt.Sprintf("%s %d", o, s.ByOutcome[o]))
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	if s.MitigatedTotal() > 0 {
		parts := make([]string, 0, len(s.Mitigated))
		for _, o := range MitigatedOutcomes() {
			if n := s.Mitigated[o]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", o, n))
			}
		}
		fmt.Fprintf(&b, ", %d mitigated (%s)", s.MitigatedTotal(), strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "; %d upsets injected", s.Injected)
	if s.ClampedRuns > 0 {
		fmt.Fprintf(&b, "; %d runs clamped at the fault cap", s.ClampedRuns)
	}
	return b.String()
}
