package faults

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/tvca"
)

func smallApp(t *testing.T) *tvca.App {
	t.Helper()
	cfg := tvca.DefaultConfig()
	cfg.Frames = 4 // short runs; keep the cache pressure
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Rate: -1},
		{Rate: math.NaN()},
		{Rate: math.Inf(1)},
		{Rate: 1, WatchdogFactor: 1},
		{Rate: 1, Targets: []Target{"flux-capacitor"}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	in, err := New(Config{Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if in.cfg.WatchdogFactor != 8 {
		t.Errorf("default watchdog factor = %d, want 8", in.cfg.WatchdogFactor)
	}
	if in.cfg.Salt != faultStream {
		t.Errorf("default salt = %#x", in.cfg.Salt)
	}
	if len(in.targets) != len(AllTargets()) {
		t.Errorf("default targets = %v", in.targets)
	}
	if in.Rate() != 0.5 {
		t.Errorf("Rate() = %g", in.Rate())
	}
}

func TestPoisson(t *testing.T) {
	for _, lambda := range []float64{0, -3, math.NaN()} {
		if k, clamped := poisson(rng.NewSplitMix64(1), lambda); k != 0 || clamped {
			t.Errorf("poisson(%g) = %d (clamped %v), want 0", lambda, k, clamped)
		}
	}
	// Deterministic in the source.
	a, b := rng.NewSplitMix64(42), rng.NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		ka, _ := poisson(a, 1.5)
		kb, _ := poisson(b, 1.5)
		if ka != kb {
			t.Fatalf("draw %d: %d vs %d", i, ka, kb)
		}
	}
	// Sample mean near lambda.
	src := rng.NewSplitMix64(7)
	const n, lambda = 5000, 1.5
	sum := 0
	for i := 0; i < n; i++ {
		k, clamped := poisson(src, lambda)
		if clamped {
			t.Fatalf("draw %d clamped at rate %g", i, lambda)
		}
		sum += k
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.1 {
		t.Errorf("sample mean %.3f, want ~%g", mean, lambda)
	}
}

// streamWith runs a short RAND campaign with the given runner hook.
func streamWith(t *testing.T, runner platform.RunFunc, runs int) *platform.CampaignResult {
	t.Helper()
	app := smallApp(t)
	c, err := platform.StreamCampaign(context.Background(), platform.RAND(), app,
		platform.StreamOptions{MaxRuns: runs, BatchSize: runs, Parallel: 4, BaseSeed: 11, Runner: runner},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRateZeroBitIdentical(t *testing.T) {
	// The acceptance criterion: with the injector installed at rate 0
	// the measured series is bit-identical to a campaign without it.
	const runs = 10
	ref := streamWith(t, nil, runs)
	in, err := New(Config{Rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := streamWith(t, in.Runner(), runs)
	if len(got.Results) != len(ref.Results) {
		t.Fatalf("%d vs %d runs", len(got.Results), len(ref.Results))
	}
	for i := range ref.Results {
		if got.Results[i] != ref.Results[i] {
			t.Fatalf("run %d differs: %+v vs %+v", i, got.Results[i], ref.Results[i])
		}
	}
}

func TestInjectedCampaignDeterministicAndClassified(t *testing.T) {
	const runs = 40
	mk := func() *platform.CampaignResult {
		in, err := New(Config{Rate: 2})
		if err != nil {
			t.Fatal(err)
		}
		return streamWith(t, in.Runner(), runs)
	}
	c := mk()
	if len(c.Results) != runs {
		t.Fatalf("%d runs", len(c.Results))
	}
	// Same base seed, same schedule, same outcomes.
	again := mk()
	for i := range c.Results {
		if c.Results[i] != again.Results[i] {
			t.Fatalf("run %d not reproducible: %+v vs %+v", i, c.Results[i], again.Results[i])
		}
	}
	// Every run carries exactly one outcome: clean runs the empty one,
	// injected runs one of the canonical classes.
	canon := make(map[string]bool)
	for _, o := range Outcomes() {
		canon[o] = true
	}
	for i, r := range c.Results {
		switch {
		case r.Faults == 0 && r.Outcome != "":
			t.Errorf("run %d: no upsets but outcome %q", i, r.Outcome)
		case r.Faults > 0 && !canon[r.Outcome]:
			t.Errorf("run %d: %d upsets but outcome %q", i, r.Faults, r.Outcome)
		}
	}
	s := Summarize(c.Results)
	if s.Total != runs || s.Clean+s.Quarantined() != runs {
		t.Errorf("summary does not add up: %+v", s)
	}
	// At rate 2 only ~13.5%% of runs draw zero upsets; the campaign must
	// actually have quarantined something for this test to mean anything.
	if s.Quarantined() == 0 {
		t.Fatal("no run was quarantined at rate 2")
	}
	if s.Injected == 0 {
		t.Fatal("no upsets recorded")
	}
	// Quarantined runs never enter the measurement series.
	if n := len(c.Times()); n != s.Clean {
		t.Errorf("Times() has %d entries, want %d clean", n, s.Clean)
	}
	if q := c.Quarantined(); q != s.Quarantined() {
		t.Errorf("CampaignResult.Quarantined() = %d, want %d", q, s.Quarantined())
	}
}

// loopWorkload counts r1 down to zero; a high-bit upset in r1 makes the
// loop run ~2^30 iterations, far past any watchdog budget.
type loopWorkload struct{}

func (loopWorkload) Name() string { return "loop" }
func (loopWorkload) Prepare(run int) (*isa.Machine, error) {
	b := isa.NewBuilder("loop", 0)
	b.Li(1, 50).Li(2, 0)
	b.Label("top").Subi(1, 1, 1).Bne(1, 2, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(p, isa.NewMemory()), nil
}
func (loopWorkload) PathOf(*isa.Machine) string { return "" }

func TestWatchdogClassifiesHungRun(t *testing.T) {
	p, err := platform.New(platform.DET())
	if err != nil {
		t.Fatal(err)
	}
	w := loopWorkload{}
	base, err := p.RunCtx(context.Background(), w, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(Config{Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := []Fault{{Step: 10, Target: TargetIntReg, Set: 1, Bit: 30}}
	res, err := in.faultedRun(context.Background(), p, w, 0, 1, base, plan, nil)
	if err != nil {
		t.Fatalf("hung run must classify, not error: %v", err)
	}
	if res.Outcome != OutcomeHung {
		t.Errorf("outcome %q, want %q", res.Outcome, OutcomeHung)
	}
	// The watchdog bounds the stall: the run retired at most the budget.
	budget := uint64(in.cfg.WatchdogFactor) * base.Instructions
	if budget < base.Instructions+watchdogSlack {
		budget = base.Instructions + watchdogSlack
	}
	if res.Instructions > budget {
		t.Errorf("hung run retired %d instructions, budget %d", res.Instructions, budget)
	}
}

// checkedWorkload computes r1 = 7 and validates it afterwards, so a
// data-corrupting upset is caught as wrong-output even though the
// machine halts cleanly.
type checkedWorkload struct{}

func (checkedWorkload) Name() string { return "checked" }
func (checkedWorkload) Prepare(run int) (*isa.Machine, error) {
	b := isa.NewBuilder("checked", 0)
	b.Li(1, 7).Nop().Nop().Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(p, isa.NewMemory()), nil
}
func (checkedWorkload) PathOf(*isa.Machine) string { return "" }
func (checkedWorkload) CheckOutput(m *isa.Machine, run int) error {
	if got := m.Reg(1); got != 7 {
		return fmt.Errorf("r1 = %d, want 7", got)
	}
	return nil
}

func TestClassificationAgainstReference(t *testing.T) {
	p, err := platform.New(platform.DET())
	if err != nil {
		t.Fatal(err)
	}
	w := checkedWorkload{}
	base, err := p.RunCtx(context.Background(), w, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(Config{Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		plan []Fault
		want string
	}{
		// Corrupt the checked register after it is written.
		{"wrong-output", []Fault{{Step: 1, Target: TargetIntReg, Set: 1, Bit: 0}}, OutcomeWrongOutput},
		// Upset an architecturally dead register: no output or timing effect.
		{"masked", []Fault{{Step: 1, Target: TargetIntReg, Set: 5, Bit: 3}}, OutcomeMasked},
	}
	for _, tc := range cases {
		res, err := in.faultedRun(context.Background(), p, w, 0, 1, base, tc.plan, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Outcome != tc.want {
			t.Errorf("%s: outcome %q, want %q", tc.name, res.Outcome, tc.want)
		}
		if res.Faults != len(tc.plan) {
			t.Errorf("%s: %d faults recorded, want %d", tc.name, res.Faults, len(tc.plan))
		}
	}
}

func TestSummarizeAndString(t *testing.T) {
	results := []platform.RunResult{
		{Cycles: 100},
		{Cycles: 110, Outcome: OutcomeTimingPerturbed, Faults: 2},
		{Cycles: 100, Outcome: OutcomeMasked, Faults: 1},
		{Cycles: 400, Outcome: OutcomeHung, Faults: 1},
		{Cycles: 100},
	}
	s := Summarize(results)
	if s.Total != 5 || s.Clean != 2 || s.Quarantined() != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.Injected != 4 {
		t.Errorf("injected = %d, want 4", s.Injected)
	}
	str := s.String()
	for _, want := range []string{"5 runs", "2 clean", "3 quarantined", "masked 1", "timing-perturbed 1", "hung 1", "4 upsets"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
	// Empty campaign renders without division blowups.
	if z := Summarize(nil).String(); !strings.Contains(z, "0 runs") {
		t.Errorf("empty summary: %q", z)
	}
}
