package faults

import (
	"fmt"
	"math"
)

// HazardKind selects the shape of the time-varying upset-rate profile.
type HazardKind string

// Hazard profiles. The zero value (or "constant") reproduces the
// original fixed Poisson rate bit-for-bit.
const (
	HazardConstant HazardKind = "constant"
	HazardWeibull  HazardKind = "weibull"
	HazardOrbit    HazardKind = "orbit"
)

// HazardKinds lists the hazard profiles in canonical order.
func HazardKinds() []HazardKind {
	return []HazardKind{HazardConstant, HazardWeibull, HazardOrbit}
}

// Hazard generalizes the constant per-run Poisson rate to a
// time-varying profile: run i's expected upset count is
// Rate * Weight(i), where Weight is the discretized hazard function,
// normalized to mean 1 over its window so rate-equivalent configs see
// the same total upset flux regardless of shape. The weight is a pure
// function of the run index — the per-run Poisson draw still comes from
// the run seed through the injector's PRNG stream, so campaigns stay
// reproducible and resumable.
//
// The zero value is the constant profile: Weight(i) == 1 exactly, and
// the injector's draw sequence is bit-identical to a config without a
// hazard.
type Hazard struct {
	// Kind selects the profile: "" or "constant" (fixed rate),
	// "weibull" (wear-out: the classic bathtub edge, rate grows as a
	// power of mission time), "orbit" (periodic orbit-phase modulation,
	// e.g. South Atlantic Anomaly passes).
	Kind HazardKind `json:"kind,omitempty"`

	// Shape is the Weibull shape parameter beta (default 2): beta > 1
	// models wear-out, beta < 1 infant mortality, beta == 1 degenerates
	// to the constant profile.
	Shape float64 `json:"shape,omitempty"`
	// MissionRuns is the Weibull normalization window in runs (default
	// 3000, the paper's campaign size): the mean weight over runs
	// [0, MissionRuns) is 1. Runs past the window see the end-of-window
	// rate.
	MissionRuns int `json:"mission_runs,omitempty"`

	// Period is the orbit profile's period in runs (default 500).
	Period int `json:"period,omitempty"`
	// Amplitude is the orbit profile's modulation depth in [0, 1)
	// (default 0.9): the rate swings between Rate*(1-A) and Rate*(1+A).
	Amplitude float64 `json:"amplitude,omitempty"`
}

// Hazard defaults.
const (
	defaultWeibullShape   = 2.0
	defaultMissionRuns    = 3000
	defaultOrbitPeriod    = 500
	defaultOrbitAmplitude = 0.9
)

// normalize applies defaults and validates; the returned hazard is what
// the injector stores.
func (h Hazard) normalize() (Hazard, error) {
	switch h.Kind {
	case "", HazardConstant:
		h.Kind = HazardConstant
	case HazardWeibull:
		if h.Shape == 0 {
			h.Shape = defaultWeibullShape
		}
		if !(h.Shape > 0) || math.IsInf(h.Shape, 0) {
			return h, fmt.Errorf("faults: weibull shape %g must be finite and > 0", h.Shape)
		}
		if h.MissionRuns == 0 {
			h.MissionRuns = defaultMissionRuns
		}
		if h.MissionRuns < 1 {
			return h, fmt.Errorf("faults: weibull mission window %d runs < 1", h.MissionRuns)
		}
	case HazardOrbit:
		if h.Period == 0 {
			h.Period = defaultOrbitPeriod
		}
		if h.Period < 2 {
			return h, fmt.Errorf("faults: orbit period %d runs < 2", h.Period)
		}
		if h.Amplitude == 0 {
			h.Amplitude = defaultOrbitAmplitude
		}
		if h.Amplitude < 0 || h.Amplitude >= 1 || math.IsNaN(h.Amplitude) {
			return h, fmt.Errorf("faults: orbit amplitude %g must be in [0, 1)", h.Amplitude)
		}
	default:
		return h, fmt.Errorf("faults: unknown hazard kind %q (have constant, weibull, orbit)", h.Kind)
	}
	return h, nil
}

// Validate checks the configuration (spec-level use, e.g. matrix
// expansion) without applying defaults.
func (h Hazard) Validate() error {
	_, err := h.normalize()
	return err
}

// Weight is the hazard function evaluated at run index i (midpoint
// rule), normalized to mean 1 over the profile's window. Constant
// returns exactly 1 so the scaled rate is bit-identical to the base
// rate.
func (h Hazard) Weight(run int) float64 {
	if run < 0 {
		run = 0
	}
	switch h.Kind {
	case HazardWeibull:
		// Weibull hazard h(t) = beta * t^(beta-1) on t in (0, 1],
		// mission time normalized so the mean over the window is 1.
		// Runs past the window hold the end-of-window value — the
		// mission is over, and an unclamped power overflows to +Inf for
		// steep shapes.
		t := (float64(run) + 0.5) / float64(h.MissionRuns)
		if t > 1 {
			t = 1
		}
		return h.Shape * math.Pow(t, h.Shape-1)
	case HazardOrbit:
		// Sinusoidal orbit-phase modulation with mean 1 per period.
		phase := 2 * math.Pi * (float64(run) + 0.5) / float64(h.Period)
		return 1 + h.Amplitude*math.Sin(phase)
	default:
		return 1
	}
}

// RateAt returns the expected upset count of run i: the base rate
// scaled by the hazard weight. The constant profile returns base
// unchanged (exact, not merely close), preserving bit-identity with
// hazard-free configs.
func (h Hazard) RateAt(base float64, run int) float64 {
	if h.Kind == HazardConstant || h.Kind == "" {
		return base
	}
	return base * h.Weight(run)
}

// label is the hazard's compact axis identifier.
func (h Hazard) label() string {
	if h.Kind == "" {
		return string(HazardConstant)
	}
	return string(h.Kind)
}

// String returns the hazard's kind label ("constant", "weibull",
// "orbit").
func (h Hazard) String() string { return h.label() }

// ParseHazard resolves a hazard kind name (as given on -hazard flags)
// to a Hazard with that kind's defaults. Empty and "constant" both
// yield the zero-value constant profile.
func ParseHazard(s string) (Hazard, error) {
	switch HazardKind(s) {
	case "", HazardConstant:
		return Hazard{}, nil
	case HazardWeibull:
		return Hazard{Kind: HazardWeibull}, nil
	case HazardOrbit:
		return Hazard{Kind: HazardOrbit}, nil
	}
	return Hazard{}, fmt.Errorf("faults: unknown hazard %q (have constant, weibull, orbit)", s)
}
