package faults

import (
	"math"
	"testing"
)

// FuzzHazard drives the hazard sampler with arbitrary profile
// parameters (unknown kinds, negative/NaN/Inf shapes, degenerate
// windows, huge run indices). Every configuration must either be
// rejected by normalize or yield weights that are finite, non-negative
// and deterministic — and the constant profile must return the base
// rate exactly, the bit-identity contract fault-free campaigns rest
// on. Seed corpus under testdata/fuzz/FuzzHazard/; `make fuzz` runs
// this target.
func FuzzHazard(f *testing.F) {
	f.Add("", 0.0, 0, 0, 0.0, 0, 0.5)
	f.Add("constant", 2.0, 3000, 500, 0.9, 2999, 1e-9)
	f.Add("weibull", 0.5, 10, 0, 0.0, 1<<30, 1.7)
	f.Add("weibull", 4.0, 1, 0, 0.0, -5, 0.25)
	f.Add("orbit", 0.0, 0, 2, 0.999, 123456, 3.0)
	f.Add("orbit", 0.0, 0, 7, -0.1, 3, 0.0)
	f.Add("solar-flare", 1.0, 100, 100, 0.5, 0, 1.0)
	f.Fuzz(func(t *testing.T, kind string, shape float64, mission, period int, amplitude float64, run int, base float64) {
		h := Hazard{
			Kind:        HazardKind(kind),
			Shape:       shape,
			MissionRuns: mission,
			Period:      period,
			Amplitude:   amplitude,
		}
		hn, err := h.normalize()
		if err != nil {
			// Rejected configs must stay rejected under Validate too.
			if h.Validate() == nil {
				t.Fatalf("normalize rejected %+v but Validate accepted it", h)
			}
			return
		}
		w := hn.Weight(run)
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			t.Fatalf("%+v: weight(%d) = %g", hn, run, w)
		}
		if again := hn.Weight(run); again != w {
			t.Fatalf("%+v: weight(%d) not deterministic: %g then %g", hn, run, w, again)
		}
		if hn.Kind == HazardConstant {
			// Exact — not within an ulp: the constant profile must be
			// invisible next to a hazard-free config.
			if w != 1 {
				t.Fatalf("constant weight(%d) = %g, want exactly 1", run, w)
			}
			if got := hn.RateAt(base, run); got != base {
				t.Fatalf("constant RateAt(%g, %d) = %g, want base unchanged", base, run, got)
			}
		} else if !math.IsNaN(base) && !math.IsInf(base, 0) {
			if got, want := hn.RateAt(base, run), base*w; got != want {
				t.Fatalf("%+v: RateAt(%g, %d) = %g, want base*weight = %g", hn, base, run, got, want)
			}
		}
		// The accepted config round-trips through its label.
		if _, err := ParseHazard(hn.String()); err != nil {
			t.Fatalf("%+v: String() %q does not parse back: %v", hn, hn.String(), err)
		}
	})
}
