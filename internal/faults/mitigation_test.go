package faults

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/rng"
)

func TestMitigationValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Rate: 1, Mitigation: Mitigation{Kind: "tmr"}},
		{Rate: 1, Mitigation: Mitigation{Kind: MitigationLockstep, Replicas: 1}},
		{Rate: 1, Hazard: Hazard{Kind: "solar-flare"}},
		{Rate: 1, Hazard: Hazard{Kind: HazardWeibull, Shape: -1}},
		{Rate: 1, Hazard: Hazard{Kind: HazardOrbit, Amplitude: 1.5}},
		{Rate: 1, Targets: []Target{TargetIL1, TargetIL1}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	// Defaults land on every enabled kind.
	in, err := New(Config{Rate: 1, Mitigation: Mitigation{Kind: MitigationLockstep}})
	if err != nil {
		t.Fatal(err)
	}
	m := in.cfg.Mitigation
	if m.Replicas != defaultReplicas || m.VoteCost != defaultVoteCost {
		t.Errorf("lockstep defaults not applied: %+v", m)
	}
}

func TestDuplicateTargetsRejected(t *testing.T) {
	_, err := New(Config{Rate: 1, Targets: []Target{TargetDL1, TargetIntReg, TargetDL1}})
	if err == nil || !strings.Contains(err.Error(), "duplicate target") {
		t.Fatalf("duplicate targets accepted (err %v)", err)
	}
}

func TestMitigatedOutcomePredicate(t *testing.T) {
	for _, o := range MitigatedOutcomes() {
		if !platform.MitigatedOutcome(o) {
			t.Errorf("platform.MitigatedOutcome(%q) = false", o)
		}
		if (platform.RunResult{Outcome: o}).Quarantined() {
			t.Errorf("mitigated outcome %q quarantines", o)
		}
	}
	for _, o := range append(Outcomes(), "") {
		if platform.MitigatedOutcome(o) {
			t.Errorf("platform.MitigatedOutcome(%q) = true", o)
		}
	}
}

// TestMitigatedCampaignGoldens pins the full outcome taxonomy of one
// 60-run rate-2 campaign (base seed 11) per mitigation kind. The exact
// counts are part of the determinism contract: a drift here means the
// fault schedule, the mitigation semantics, or the classification
// changed.
func TestMitigatedCampaignGoldens(t *testing.T) {
	const runs = 60
	cases := []struct {
		kind        MitigationKind
		clean       int
		mitigated   map[string]int
		quarantined map[string]int
	}{
		{MitigationScrub, 26,
			map[string]int{OutcomeScrubbed: 19},
			map[string]int{OutcomeMasked: 25, OutcomeTimingPerturbed: 5, OutcomeWrongOutput: 4}},
		{MitigationECC, 26,
			map[string]int{OutcomeCorrected: 19},
			map[string]int{OutcomeMasked: 30, OutcomeWrongOutput: 4}},
		{MitigationLockstep, 60,
			map[string]int{OutcomeVoted: 53},
			map[string]int{}},
	}
	for _, tc := range cases {
		t.Run(string(tc.kind), func(t *testing.T) {
			in, err := New(Config{Rate: 2, Mitigation: Mitigation{Kind: tc.kind}})
			if err != nil {
				t.Fatal(err)
			}
			s := Summarize(streamWith(t, in.Runner(), runs).Results)
			if s.Total != runs || s.Injected != 110 {
				t.Errorf("total %d, injected %d; want %d and 110", s.Total, s.Injected, runs)
			}
			if s.Clean != tc.clean {
				t.Errorf("clean = %d, want %d", s.Clean, tc.clean)
			}
			if !reflect.DeepEqual(s.Mitigated, tc.mitigated) {
				t.Errorf("mitigated = %v, want %v", s.Mitigated, tc.mitigated)
			}
			if !reflect.DeepEqual(s.ByOutcome, tc.quarantined) {
				t.Errorf("quarantined = %v, want %v", s.ByOutcome, tc.quarantined)
			}
		})
	}
}

// TestLockstepNeverQuarantines is lockstep's defining property across a
// whole campaign: majority voting recovers every injected run.
func TestLockstepNeverQuarantines(t *testing.T) {
	in, err := New(Config{Rate: 3, Mitigation: Mitigation{Kind: MitigationLockstep}})
	if err != nil {
		t.Fatal(err)
	}
	c := streamWith(t, in.Runner(), 30)
	for i, r := range c.Results {
		if r.Quarantined() {
			t.Errorf("run %d quarantined with outcome %q under lockstep", i, r.Outcome)
		}
	}
}

// TestECCSingleBitNeverQuarantined is the ECC property test: any fault
// plan made solely of single-bit upsets to distinct cache/TLB cells is
// fully corrected — outcome "corrected", never quarantined, timing the
// clean baseline plus the per-correction latency.
func TestECCSingleBitNeverQuarantined(t *testing.T) {
	p, err := platform.New(platform.DET())
	if err != nil {
		t.Fatal(err)
	}
	w := checkedWorkload{}
	base, err := p.RunCtx(context.Background(), w, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(Config{Rate: 1, Mitigation: Mitigation{Kind: MitigationECC}})
	if err != nil {
		t.Fatal(err)
	}
	arrays := []Target{TargetIL1, TargetDL1, TargetITLB, TargetDTLB}
	src := rng.NewSplitMix64(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(src, 5)
		plan := make([]Fault, 0, n)
		seen := make(map[[3]int]bool)
		for len(plan) < n {
			ti := rng.Intn(src, len(arrays))
			set, way := rng.Intn(src, 8), rng.Intn(src, 2)
			if seen[[3]int{ti, set, way}] {
				continue // distinct cells only: that is the single-bit premise
			}
			seen[[3]int{ti, set, way}] = true
			plan = append(plan, Fault{
				Step:   uint64(rng.Intn(src, int(base.Instructions))),
				Target: arrays[ti],
				Set:    set, Way: way,
				Bit: rng.Intn(src, 65),
			})
		}
		res, err := in.eccRun(context.Background(), p, w, 0, 1, base, plan)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Outcome != OutcomeCorrected {
			t.Fatalf("trial %d: outcome %q, want %q (plan %+v)", trial, res.Outcome, OutcomeCorrected, plan)
		}
		if res.Quarantined() {
			t.Fatalf("trial %d: corrected run quarantined", trial)
		}
		want := base.Cycles + uint64(len(plan))*in.cfg.Mitigation.ECCLatency
		if res.Cycles != want {
			t.Errorf("trial %d: cycles %d, want base %d + %d corrections", trial, res.Cycles, base.Cycles, len(plan))
		}
	}
}

// TestECCDoubleBitEscalates: two upsets in the same cell defeat SECDED
// and the run falls back to the base taxonomy.
func TestECCDoubleBitEscalates(t *testing.T) {
	p, err := platform.New(platform.DET())
	if err != nil {
		t.Fatal(err)
	}
	w := checkedWorkload{}
	base, err := p.RunCtx(context.Background(), w, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(Config{Rate: 1, Mitigation: Mitigation{Kind: MitigationECC}})
	if err != nil {
		t.Fatal(err)
	}
	plan := []Fault{
		{Step: 1, Target: TargetDL1, Set: 3, Way: 0, Bit: 2},
		{Step: 2, Target: TargetDL1, Set: 3, Way: 0, Bit: 7},
	}
	res, err := in.eccRun(context.Background(), p, w, 0, 1, base, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeCorrected {
		t.Fatalf("double-bit upset reported corrected")
	}
	if res.Faults != len(plan) {
		t.Errorf("faults = %d, want %d", res.Faults, len(plan))
	}
}

func TestScrubOverheadDeterministic(t *testing.T) {
	m := Mitigation{Kind: MitigationScrub, ScrubInterval: 100, ScrubCost: 10}
	if got := scrubOverhead(m, 1000); got != 100 {
		t.Errorf("scrubOverhead = %d, want 100", got)
	}
	// Clean (zero-draw) runs pay the scrub traffic too — the scrubber
	// walks the arrays whether or not an upset landed.
	in, err := New(Config{Rate: 1, Mitigation: m})
	if err != nil {
		t.Fatal(err)
	}
	res := in.cleanOverhead(platform.RunResult{Cycles: 500, Instructions: 1000})
	if res.Cycles != 600 {
		t.Errorf("clean scrubbed run cycles = %d, want 600", res.Cycles)
	}
	if res.Outcome != "" {
		t.Errorf("clean run outcome %q", res.Outcome)
	}
}

func TestLockstepCleanOverhead(t *testing.T) {
	in, err := New(Config{Rate: 1, Mitigation: Mitigation{Kind: MitigationLockstep, Replicas: 3, VoteCost: 50}})
	if err != nil {
		t.Fatal(err)
	}
	res := in.cleanOverhead(platform.RunResult{Cycles: 200})
	if res.Cycles != 3*200+50 {
		t.Errorf("clean lockstep run cycles = %d, want %d", res.Cycles, 3*200+50)
	}
}

// maxSource always returns the largest 64-bit value, so rng.Float64
// yields ~1.0 and Knuth's product never decays — the pathological draw
// that actually reaches the per-run fault cap.
type maxSource struct{}

func (maxSource) Uint64() uint64 { return math.MaxUint64 }
func (maxSource) Seed(uint64)    {}

// TestClampSurfaced: a draw that hits the per-run fault cap is
// reported, counted, and rendered — not silently truncated.
func TestClampSurfaced(t *testing.T) {
	k, clamped := poisson(maxSource{}, 10)
	if !clamped || k != maxFaultsPerRun {
		t.Fatalf("pathological draw: k=%d clamped=%v, want %d and true", k, clamped, maxFaultsPerRun)
	}
	// Ordinary rates never clamp.
	if _, clamped := poisson(rng.NewSplitMix64(5), 3); clamped {
		t.Error("rate-3 draw clamped")
	}
	s := Summary{Total: 4, Clean: 4, ClampedRuns: 2}
	if !strings.Contains(s.String(), "2 runs clamped at the fault cap") {
		t.Errorf("summary does not surface the clamp: %q", s.String())
	}
	in, err := New(Config{Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if in.ClampedRuns() != 0 {
		t.Errorf("fresh injector reports %d clamped runs", in.ClampedRuns())
	}
}

func TestParseMitigationAndHazard(t *testing.T) {
	if _, err := ParseMitigation("rad-hard"); err == nil {
		t.Error("unknown mitigation parsed")
	}
	if _, err := ParseHazard("flare"); err == nil {
		t.Error("unknown hazard parsed")
	}
	m, err := ParseMitigation("ecc")
	if err != nil || m.Kind != MitigationECC {
		t.Errorf("ParseMitigation(ecc) = %+v, %v", m, err)
	}
	if m.String() != "ecc" {
		t.Errorf("String() = %q", m.String())
	}
	h, err := ParseHazard("orbit")
	if err != nil || h.Kind != HazardOrbit {
		t.Errorf("ParseHazard(orbit) = %+v, %v", h, err)
	}
	none, err := ParseMitigation("")
	if err != nil || none.Enabled() {
		t.Errorf("empty mitigation = %+v, %v", none, err)
	}
}

func TestSummaryMitigatedString(t *testing.T) {
	results := []platform.RunResult{
		{Cycles: 100},
		{Cycles: 130, Outcome: OutcomeCorrected, Faults: 1},
		{Cycles: 150, Outcome: OutcomeVoted, Faults: 2},
		{Cycles: 400, Outcome: OutcomeHung, Faults: 1},
	}
	s := Summarize(results)
	if s.Clean != 3 || s.MitigatedTotal() != 2 || s.Quarantined() != 1 {
		t.Fatalf("summary %+v", s)
	}
	str := s.String()
	for _, want := range []string{"3 clean", "2 mitigated", "corrected 1", "voted 1", "1 quarantined"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
	if math.Abs(float64(s.Injected)-4) > 0 {
		t.Errorf("injected = %d", s.Injected)
	}
}
