# Convenience targets for the MBPTA reproduction.

GO ?= go
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)

.PHONY: test check staticcheck bench bench-all experiments race cover fuzz resume-check service-check matrix-check leak-check performability-check clean

test:
	$(GO) test ./...

# What CI runs: vet (+ staticcheck when installed) plus the full suite
# under the race detector, then the end-to-end kill-and-resume gate.
check: staticcheck
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) service-check
	$(MAKE) resume-check
	$(MAKE) matrix-check
	$(MAKE) leak-check
	$(MAKE) performability-check

# Service-layer gate: the campaign fabric's bit-identity proofs
# (single-process == N-executor fabric, including a killed-and-
# re-leased executor, == journal-resumed), the pWCET service HTTP API,
# the daemon's serve/join/shutdown cycle, and the 120-concurrent-
# campaign stress test (fair scheduling + admission backpressure).
service-check:
	$(GO) test ./internal/fabric/ ./internal/pwcetd/ ./cmd/pwcetd/
	$(GO) test -run 'TestFingerprintParityAcrossExecutionModes' ./pkg/mbpta/

# End-to-end durability gate: journal a campaign, kill it mid-flight,
# tear the journal tail, resume, and require a bit-identical report
# (exits non-zero on any fingerprint mismatch).
resume-check:
	$(GO) run ./examples/resumable_campaign

# Scenario-matrix cache gate: run a small matrix cold, re-run it after
# an analysis-only tweak, and require zero re-simulated runs, >=90%
# cache hits, bit-identical per-cell fingerprints, and a >=5x warm
# speedup (exits non-zero on any violation).
matrix-check:
	$(GO) run ./examples/matrix_check

# Timing-leak gate: measure the secret-dependent probe on DET and RAND
# and require the nine-decile quantile gate to flag DET as leaking
# (posterior >= 0.999) and clear RAND (posterior <= 0.5); exits
# non-zero otherwise. The pinned-seed golden variant with fingerprint
# checks lives in internal/experiments (TestLeakOracleGolden).
leak-check:
	$(GO) run ./examples/leak_check

# Performability gate: mitigation-off fault campaigns must fingerprint
# bit-identically to plain rate-only campaigns (the mitigation layer is
# invisible until switched on), and a pinned-seed sweep must price the
# schemes in order — lockstep pWCET > ECC pWCET > unmitigated clean
# bound (exits non-zero on any violation).
performability-check:
	$(GO) run ./examples/performability_check

# staticcheck is optional tooling: run it when present, skip with a
# notice otherwise (the sandbox image carries only the go toolchain).
staticcheck:
ifdef STATICCHECK
	$(STATICCHECK) ./...
else
	@echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
endif

# The platform package includes telemetry-enabled parallel campaigns
# (TestStreamTelemetryHarvest), so the harvest path is race-checked too.
# internal/faults covers the fault and mitigation campaign paths, and
# the pkg/mbpta line adds the parallel mitigated campaigns on top of
# the telemetry and fingerprint suites.
# The repo-root Multicore goldens run under race as well: board reuse
# keeps arbiter state alive across runs, so cross-run sharing bugs only
# show up when the reused board's goroutine mode is race-checked.
race:
	$(GO) test -race ./internal/platform/ ./internal/rng/ ./internal/faults/ ./internal/telemetry/
	$(GO) test -race ./internal/fabric/ ./internal/pwcetd/
	$(GO) test -race -run 'Telemetry|Fingerprint|Mitigat' ./pkg/mbpta/
	$(GO) test -race -run 'TestMulticoreGolden' .

# Perf-regression snapshot: runs the simulator throughput benchmarks
# and writes the results (ns/op, instr/s, allocs/op, git SHA, date) to
# the next free BENCH_<n>.json for commit-over-commit comparison.
bench:
	$(GO) run ./internal/tools/benchjson

# Every benchmark in the repository, human-readable output only.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Full paper-scale evaluation (3,000 runs per campaign, ~3 min).
experiments:
	$(GO) run ./cmd/experiments -exp all -runs 3000

# Coverage floors on the statistics and observability packages that the
# rest of the pipeline's guarantees rest on, as package:floor pairs.
# internal/stats carries the quantile gate and the leak oracle's
# verdict, so its floor is 90%; the others hold at 70%.
COVER_FLOORS := ./internal/telemetry/:70 ./internal/stats/:90 ./internal/evt/:70

cover:
	@for entry in $(COVER_FLOORS); do \
		pkg=$${entry%:*}; floor=$${entry##*:}; \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		echo "$$pkg coverage: $$pct% (floor $$floor%)"; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p+0 >= f+0) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "FAIL: $$pkg coverage $$pct% below the $$floor% floor"; exit 1; fi; \
	done
	$(GO) test -cover ./internal/... ./pkg/...

# Native fuzzing, 30s per target: the ISA interpreter against arbitrary
# instruction streams, the telemetry event codec in both directions, the
# campaign-journal (WAL) codec and recovery scan, the quantile
# estimator and nine-decile gate against adversarial samples (NaN/Inf,
# ties, denormals, tiny n), and the hazard sampler against arbitrary
# profile parameters. Seed corpora live under the packages'
# testdata/fuzz/ directories.
fuzz:
	$(GO) test ./internal/isa/ -run '^$$' -fuzz '^FuzzInterpreter$$' -fuzztime 30s
	$(GO) test ./internal/telemetry/ -run '^$$' -fuzz '^FuzzEventRoundTrip$$' -fuzztime 30s
	$(GO) test ./internal/telemetry/ -run '^$$' -fuzz '^FuzzReadEvents$$' -fuzztime 30s
	$(GO) test ./internal/wal/ -run '^$$' -fuzz '^FuzzRecover$$' -fuzztime 30s
	$(GO) test ./internal/wal/ -run '^$$' -fuzz '^FuzzRunRecordCodec$$' -fuzztime 30s
	$(GO) test ./internal/wal/ -run '^$$' -fuzz '^FuzzDecodePayloads$$' -fuzztime 30s
	$(GO) test ./internal/stats/ -run '^$$' -fuzz '^FuzzEstimateQuantile$$' -fuzztime 30s
	$(GO) test ./internal/stats/ -run '^$$' -fuzz '^FuzzCompareQuantiles$$' -fuzztime 30s
	$(GO) test ./internal/faults/ -run '^$$' -fuzz '^FuzzHazard$$' -fuzztime 30s

clean:
	$(GO) clean -testcache
