# Convenience targets for the MBPTA reproduction.

GO ?= go

.PHONY: test check bench experiments race cover clean

test:
	$(GO) test ./...

# What CI runs: vet plus the full suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/platform/ ./internal/rng/

bench:
	$(GO) test -bench=. -benchmem ./...

# Full paper-scale evaluation (3,000 runs per campaign, ~3 min).
experiments:
	$(GO) run ./cmd/experiments -exp all -runs 3000

cover:
	$(GO) test -cover ./internal/... ./pkg/...

clean:
	$(GO) clean -testcache
