# Convenience targets for the MBPTA reproduction.

GO ?= go
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)

.PHONY: test check staticcheck bench bench-all experiments race cover clean

test:
	$(GO) test ./...

# What CI runs: vet (+ staticcheck when installed) plus the full suite
# under the race detector.
check: staticcheck
	$(GO) vet ./...
	$(GO) test -race ./...

# staticcheck is optional tooling: run it when present, skip with a
# notice otherwise (the sandbox image carries only the go toolchain).
staticcheck:
ifdef STATICCHECK
	$(STATICCHECK) ./...
else
	@echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
endif

race:
	$(GO) test -race ./internal/platform/ ./internal/rng/ ./internal/faults/

# Perf-regression snapshot: runs the simulator throughput benchmarks
# and writes the results (ns/op, instr/s, allocs/op, git SHA, date) to
# the next free BENCH_<n>.json for commit-over-commit comparison.
bench:
	$(GO) run ./internal/tools/benchjson

# Every benchmark in the repository, human-readable output only.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Full paper-scale evaluation (3,000 runs per campaign, ~3 min).
experiments:
	$(GO) run ./cmd/experiments -exp all -runs 3000

cover:
	$(GO) test -cover ./internal/... ./pkg/...

clean:
	$(GO) clean -testcache
